open Core

type level =
  | Read_committed
  | Read_atomic
  | Causal
  | Snapshot_isolation
  | Serializability

let levels =
  [ Read_committed; Read_atomic; Causal; Snapshot_isolation; Serializability ]

let level_name = function
  | Read_committed -> "rc"
  | Read_atomic -> "ra"
  | Causal -> "causal"
  | Snapshot_isolation -> "si"
  | Serializability -> "ser"

let level_of_name s = List.find_opt (fun l -> level_name l = s) levels

let level_doc = function
  | Read_committed -> "read committed (observed writers commit first)"
  | Read_atomic -> "read atomic (transactions read atomic snapshots)"
  | Causal -> "causal consistency (reads respect causal past)"
  | Snapshot_isolation -> "snapshot isolation (via commit-order splitting)"
  | Serializability -> "serializability (some total order explains all reads)"

type edge_reason =
  | Session
  | Reads_from of Names.var
  | Forced_before of { var : Names.var; source : int; reader : int }
  | Forced_after of { var : Names.var; source : int; reader : int }

type edge = { src : int; dst : int; reason : edge_reason }

type witness =
  | Cycle of edge list
  | Dangling_read of { reader : int; var : Names.var; value : int }
  | Ambiguous_write of { var : Names.var; value : int; writers : int list }
  | Internal_misread of { txn : int; var : Names.var; value : int }
  | No_order of { explored : int }

type verdict = Consistent of int list | Violation of witness | Unknown of string

type result = { level : level; verdict : verdict; split : bool }

let init_txn h = History.n h

(* Search / chase size policy. *)
let default_budget = 2_000_000
let chase_max = 256 (* run the O(n^3) chase only below this *)
let minimal_cycle_max = 2048 (* shortest-cycle extraction bound *)
let causal_bitset_max = 4096 (* per-txn past bitsets bound *)
let causal_vc_sessions = 64 (* vector-clock path bound on sessions *)

(* ---------- well-formedness ---------- *)

let well_formed h =
  let out = ref [] in
  let n = History.n h in
  let seen : (Names.var * int, int) Hashtbl.t = Hashtbl.create 64 in
  for t = 0 to n - 1 do
    List.iter
      (fun (x, v) ->
        if v = History.initial_value then
          out := Ambiguous_write { var = x; value = v; writers = [ t ] } :: !out
        else
          match Hashtbl.find_opt seen (x, v) with
          | Some t' ->
            out :=
              Ambiguous_write { var = x; value = v; writers = [ t'; t ] }
              :: !out
          | None -> Hashtbl.add seen (x, v) t)
      (History.ext_writes h t)
  done;
  for t = 0 to n - 1 do
    (* INT: reads following an own write must return it *)
    let own = ref Names.Vmap.empty in
    List.iter
      (fun (e : History.event) ->
        match e.kind with
        | History.W -> own := Names.Vmap.add e.var e.value !own
        | History.R -> (
          match Names.Vmap.find_opt e.var !own with
          | Some w when w <> e.value ->
            out :=
              Internal_misread { txn = t; var = e.var; value = e.value } :: !out
          | _ -> ()))
      (History.events h t);
    List.iter
      (fun (x, v) ->
        if v <> History.initial_value then
          match History.writer_of h x v with
          | None -> out := Dangling_read { reader = t; var = x; value = v } :: !out
          | Some t' when t' = t ->
            (* an external read returning the reader's own later write *)
            out := Internal_misread { txn = t; var = x; value = v } :: !out
          | Some _ -> ())
      (History.ext_reads h t)
  done;
  List.rev !out

(* ---------- shared derived structure ---------- *)

type ctx = {
  h : History.t;
  n : int;
  t0 : int;
  pairs : (Names.var * int * int) list; (* (x, source, reader); source may be t0 *)
  read_srcs : (Names.var * int) list array; (* reader's ext reads, resolved, in read order *)
  srcs : int list array; (* distinct sources per reader *)
  wset : Names.Vset.t array; (* external write sets *)
  readers_by_src : (Names.var * int) list array; (* pairs sourced at a real txn *)
}

let make_ctx h =
  let n = History.n h in
  let t0 = n in
  let read_srcs = Array.make (n + 1) [] in
  let srcs = Array.make (n + 1) [] in
  let wset = Array.make (n + 1) Names.Vset.empty in
  let readers_by_src = Array.make (n + 1) [] in
  let pairs = ref [] in
  for t = n - 1 downto 0 do
    wset.(t) <-
      List.fold_left
        (fun s (x, _) -> Names.Vset.add x s)
        Names.Vset.empty (History.ext_writes h t);
    let resolved =
      List.map
        (fun (x, v) ->
          match History.writer_of h x v with
          | Some w -> (x, w)
          | None -> (x, t0))
        (History.ext_reads h t)
    in
    read_srcs.(t) <- resolved;
    srcs.(t) <- List.sort_uniq compare (List.map snd resolved);
    List.iter
      (fun (x, w) ->
        if w <> t then begin
          pairs := (x, w, t) :: !pairs;
          if w <> t0 then readers_by_src.(w) <- (x, t) :: readers_by_src.(w)
        end)
      resolved
  done;
  { h; n; t0; pairs = !pairs; read_srcs; srcs; wset; readers_by_src }

let writes_var c t x = t <> c.t0 && Names.Vset.mem x c.wset.(t)

let so c t u =
  (* t strictly precedes u in session order (t0 precedes every txn) *)
  t <> u
  && (t = c.t0
     || u <> c.t0
        && History.session_of c.h t = History.session_of c.h u
        && History.session_pos c.h t < History.session_pos c.h u)

let wr c t u = u <> c.t0 && t <> u && List.mem t c.srcs.(u)

(* ---------- the constraint graph (saturation levels) ---------- *)

type graph = {
  nn : int;
  succ : int list array;
  reasons : (int, edge_reason) Hashtbl.t; (* key src * nn + dst, first wins *)
}

let graph_create nn = { nn; succ = Array.make nn []; reasons = Hashtbl.create 256 }

let graph_add g src dst reason =
  let key = (src * g.nn) + dst in
  if not (Hashtbl.mem g.reasons key) then begin
    Hashtbl.add g.reasons key reason;
    g.succ.(src) <- dst :: g.succ.(src)
  end

let graph_reason g src dst = Hashtbl.find_opt g.reasons ((src * g.nn) + dst)

let base_graph c =
  let g = graph_create (c.n + 1) in
  Array.iter
    (fun ts ->
      if Array.length ts > 0 then graph_add g c.t0 ts.(0) Session;
      for i = 0 to Array.length ts - 2 do
        graph_add g ts.(i) ts.(i + 1) Session
      done)
    (History.sessions c.h);
  List.iter
    (fun (x, src, rdr) -> graph_add g src rdr (Reads_from x))
    c.pairs;
  g

let topo_order g =
  let indeg = Array.make g.nn 0 in
  Array.iter (List.iter (fun v -> indeg.(v) <- indeg.(v) + 1)) g.succ;
  let q = Queue.create () in
  for v = 0 to g.nn - 1 do
    if indeg.(v) = 0 then Queue.add v q
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    order := v :: !order;
    incr count;
    List.iter
      (fun u ->
        indeg.(u) <- indeg.(u) - 1;
        if indeg.(u) = 0 then Queue.add u q)
      g.succ.(v)
  done;
  if !count = g.nn then Some (List.rev !order) else None

(* Extract a justified cycle from a cyclic constraint graph. *)
let cycle_witness g =
  let dg = Digraph.create g.nn in
  Hashtbl.iter
    (fun key _ -> Digraph.add_edge dg (key / g.nn) (key mod g.nn))
    g.reasons;
  let cyc =
    if g.nn <= minimal_cycle_max then Anomaly.minimal_cycle dg
    else Digraph.find_cycle dg
  in
  match cyc with
  | None -> assert false (* caller established cyclicity *)
  | Some vs ->
    let vs = Array.of_list vs in
    let k = Array.length vs in
    Cycle
      (List.init k (fun i ->
           let src = vs.(i) and dst = vs.((i + 1) mod k) in
           let reason =
             match graph_reason g src dst with
             | Some r -> r
             | None -> assert false
           in
           { src; dst; reason }))

(* Causal past: [past t3 t2] iff t3 -> t2 in (SO ∪ WR)+. Two engines:
   session vector clocks (any n, few sessions) or per-txn bitsets
   (any sessions, small n). Computed over an acyclic base graph. *)
let causal_past c g order =
  let s = History.n_sessions c.h in
  let preds t =
    (* base-graph predecessors: session predecessor + read sources *)
    let sess = History.session_of c.h t and p = History.session_pos c.h t in
    let chain =
      if p > 0 then [ (History.sessions c.h).(sess).(p - 1) ] else []
    in
    chain @ List.filter (fun u -> u <> c.t0) c.srcs.(t)
  in
  ignore g;
  if s <= causal_vc_sessions then begin
    let vc = Array.make_matrix (c.n + 1) s 0 in
    List.iter
      (fun t ->
        if t <> c.t0 then begin
          List.iter
            (fun p ->
              for i = 0 to s - 1 do
                if vc.(p).(i) > vc.(t).(i) then vc.(t).(i) <- vc.(p).(i)
              done)
            (preds t);
          let sess = History.session_of c.h t in
          let self = History.session_pos c.h t + 1 in
          if self > vc.(t).(sess) then vc.(t).(sess) <- self
        end)
      order;
    Some
      (fun t3 t2 ->
        t3 <> t2 && t2 <> c.t0
        && (t3 = c.t0
           || History.session_pos c.h t3 < vc.(t2).(History.session_of c.h t3)))
  end
  else if c.n <= causal_bitset_max then begin
    let words = (c.n + 63) / 64 in
    let past = Array.make_matrix (c.n + 1) words 0L in
    let set m t = m.(t / 64) <- Int64.logor m.(t / 64) (Int64.shift_left 1L (t mod 64)) in
    let mem m t =
      Int64.logand m.(t / 64) (Int64.shift_left 1L (t mod 64)) <> 0L
    in
    List.iter
      (fun t ->
        if t <> c.t0 then
          List.iter
            (fun p ->
              for w = 0 to words - 1 do
                past.(t).(w) <- Int64.logor past.(t).(w) past.(p).(w)
              done;
              set past.(t) p)
            (preds t))
      order;
    Some (fun t3 t2 -> t3 <> t2 && t2 <> c.t0 && (t3 = c.t0 || mem past.(t2) t3))
  end
  else None

(* Forced edges for the co-free premises; the premise never mentions
   co, so one pass suffices (no fixpoint). *)
let add_forced_rc c g =
  Array.iteri
    (fun t2 resolved ->
      if t2 <> c.t0 then begin
        let earlier : (int, unit) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun (x, t1) ->
            Hashtbl.iter
              (fun t3 () ->
                if t3 <> t1 && t3 <> t2 && writes_var c t3 x then
                  graph_add g t3 t1
                    (Forced_before { var = x; source = t1; reader = t2 }))
              earlier;
            if t1 <> c.t0 then Hashtbl.replace earlier t1 ())
          resolved
      end)
    c.read_srcs

let add_forced_with_premise c g premise =
  List.iter
    (fun (x, t1, t2) ->
      List.iter
        (fun t3 ->
          if t3 <> t1 && t3 <> t2 && premise t3 t2 then
            graph_add g t3 t1 (Forced_before { var = x; source = t1; reader = t2 }))
        (History.writers c.h x))
    c.pairs

let saturation_check c level =
  let g = base_graph c in
  let forced_ok =
    match level with
    | Read_committed ->
      add_forced_rc c g;
      true
    | Read_atomic ->
      add_forced_with_premise c g (fun t3 t2 -> so c t3 t2 || wr c t3 t2);
      true
    | Causal -> (
      (* the premise needs the causal order, which only exists if the
         base is acyclic; a base cycle is already a violation *)
      match topo_order (base_graph c) with
      | None -> true (* cyclic base: skip premises, fail below *)
      | Some order -> (
        match causal_past c g order with
        | Some premise ->
          add_forced_with_premise c g premise;
          true
        | None -> false))
    | Snapshot_isolation | Serializability -> assert false
  in
  if not forced_ok then
    Unknown
      (Printf.sprintf
         "causal premise needs ≤ %d sessions or ≤ %d transactions"
         causal_vc_sessions causal_bitset_max)
  else
    match topo_order g with
    | Some order -> Consistent (List.filter (fun t -> t <> c.t0) order)
    | None -> Violation (cycle_witness g)

(* ---------- serializability ---------- *)

(* Sound chase on small histories: derive forced edges from both
   contrapositives of the SER axiom over a transitive closure, to
   fixpoint. A diagonal hit gives a justified cycle witness; an acyclic
   fixpoint contributes pruning predecessors for the search. *)
exception Found_cycle of witness

let chase c =
  let nn = c.n + 1 in
  let g = base_graph c in
  let reach = Bytes.make (nn * nn) '\000' in
  let get u v = Bytes.get reach ((u * nn) + v) <> '\000' in
  let set u v = Bytes.set reach ((u * nn) + v) '\001' in
  (* initial closure (DFS from each vertex over base edges) *)
  let rec dfs root v =
    List.iter
      (fun u ->
        if not (get root u) then begin
          set root u;
          dfs root u
        end)
      g.succ.(v)
  in
  for v = 0 to nn - 1 do
    dfs v v
  done;
  let add_closed src dst =
    (* R := R ∪ R·{(src,dst)}·R *)
    for a = 0 to nn - 1 do
      if a = src || get a src then
        for b = 0 to nn - 1 do
          if (b = dst || get dst b) && not (get a b) then set a b
        done
    done
  in
  let check_diagonal () =
    for v = 0 to nn - 1 do
      if get v v then raise (Found_cycle (cycle_witness g))
    done
  in
  try
    check_diagonal ();
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (x, t1, t2) ->
          List.iter
            (fun t3 ->
              if t3 <> t1 && t3 <> t2 then begin
                if get t3 t2 && not (get t3 t1) then begin
                  graph_add g t3 t1
                    (Forced_before { var = x; source = t1; reader = t2 });
                  add_closed t3 t1;
                  changed := true
                end;
                if (t1 = c.t0 || get t1 t3) && not (get t2 t3) then begin
                  graph_add g t2 t3
                    (Forced_after { var = x; source = t1; reader = t2 });
                  add_closed t2 t3;
                  changed := true
                end
              end)
            (History.writers c.h x))
        c.pairs;
      check_diagonal ()
    done;
    Ok g
  with Found_cycle w -> Error w

exception Budget_exhausted

(* Exact decision: a transaction t is appendable to a prefix P iff its
   session predecessors are in P, its read sources are in P, and no
   variable t writes has an open reads-from pair crossing the frontier
   (source in P, reader outside, reader ≠ t). Prefix states are
   per-session counters; reachable states are memoized on failure, so
   the search is an exact decision procedure, polynomial for a bounded
   number of sessions. *)
let search c ~extra_preds ~budget =
  let sessions = History.sessions c.h in
  let s = Array.length sessions in
  let counts = Array.make s 0 in
  let in_p t = t = c.t0 || History.session_pos c.h t < counts.(History.session_of c.h t) in
  let pending : (Names.var, int ref) Hashtbl.t = Hashtbl.create 64 in
  let pending_of x =
    match Hashtbl.find_opt pending x with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add pending x r;
      r
  in
  (* pairs sourced at the initial txn are open from the start *)
  List.iter
    (fun (x, src, _) -> if src = c.t0 then incr (pending_of x))
    c.pairs;
  let appendable t =
    List.for_all (fun (_, src) -> in_p src) c.read_srcs.(t)
    && List.for_all (fun u -> in_p u) extra_preds.(t)
    && Names.Vset.for_all
         (fun x ->
           let open_pairs = match Hashtbl.find_opt pending x with
             | Some r -> !r
             | None -> 0
           in
           let own = if List.exists (fun (y, _) -> y = x) c.read_srcs.(t) then 1 else 0 in
           open_pairs = own)
         c.wset.(t)
  in
  let apply t =
    counts.(History.session_of c.h t) <- History.session_pos c.h t + 1;
    List.iter (fun (x, _) -> decr (pending_of x)) c.read_srcs.(t);
    List.iter (fun (x, _) -> incr (pending_of x)) c.readers_by_src.(t)
  in
  let unapply t =
    counts.(History.session_of c.h t) <- History.session_pos c.h t;
    List.iter (fun (x, _) -> incr (pending_of x)) c.read_srcs.(t);
    List.iter (fun (x, _) -> decr (pending_of x)) c.readers_by_src.(t)
  in
  let failed : (int array, unit) Hashtbl.t = Hashtbl.create 1024 in
  let explored = ref 0 in
  let order = Array.make c.n (-1) in
  let tried = Array.make (c.n + 1) 0 in
  let depth = ref 0 in
  let result = ref None in
  tried.(0) <- 0;
  (try
     while !result = None do
       if !depth = c.n then result := Some (Array.to_list order)
       else begin
         let start =
           if !depth = 0 then 0
           else (History.session_of c.h order.(!depth - 1) + 1) mod s
         in
         (* next untried rotation offset at this depth *)
         let found = ref false in
         while (not !found) && tried.(!depth) < s do
           let off = tried.(!depth) in
           tried.(!depth) <- off + 1;
           let sess = (start + off) mod s in
           if counts.(sess) < Array.length sessions.(sess) then begin
             let t = sessions.(sess).(counts.(sess)) in
             if appendable t then begin
               apply t;
               if Hashtbl.mem failed counts then unapply t
               else begin
                 incr explored;
                 if !explored > budget then raise Budget_exhausted;
                 order.(!depth) <- t;
                 incr depth;
                 tried.(!depth) <- 0;
                 found := true
               end
             end
           end
         done;
         if not !found then begin
           (* state exhausted: record and pop *)
           Hashtbl.replace failed (Array.copy counts) ();
           if !depth = 0 then raise Exit;
           decr depth;
           unapply order.(!depth)
         end
       end
     done;
     match !result with
     | Some o -> Consistent o
     | None -> assert false
   with
  | Exit -> Violation (No_order { explored = !explored })
  | Budget_exhausted ->
    Unknown
      (Printf.sprintf "search budget exhausted after %d states" !explored))

let ser_check ?(budget = default_budget) c =
  let no_preds = Array.make (c.n + 1) [] in
  if c.n = 0 then Consistent []
  else if c.n + 1 <= chase_max then
    match chase c with
    | Error w -> Violation w
    | Ok g ->
      let extra = Array.make (c.n + 1) [] in
      Hashtbl.iter
        (fun key _ ->
          let src = key / g.nn and dst = key mod g.nn in
          if src <> c.t0 && dst <> c.t0 then extra.(dst) <- src :: extra.(dst))
        g.reasons;
      search c ~extra_preds:extra ~budget
  else search c ~extra_preds:no_preds ~budget

(* ---------- snapshot isolation via splitting ---------- *)

let si_token x = "si#" ^ x

let split_si h =
  let n = History.n h in
  let max_val = ref History.initial_value in
  for t = 0 to n - 1 do
    List.iter
      (fun (e : History.event) -> if e.value > !max_val then max_val := e.value)
      (History.events h t)
  done;
  let token_val t = !max_val + 1 + t in
  let half_r t =
    List.map
      (fun (x, v) -> { History.kind = History.R; var = x; value = v })
      (History.ext_reads h t)
    @ List.map
        (fun (x, _) ->
          { History.kind = History.W; var = si_token x; value = token_val t })
        (History.ext_writes h t)
  in
  let half_w t =
    List.map
      (fun (x, _) ->
        { History.kind = History.R; var = si_token x; value = token_val t })
      (History.ext_writes h t)
    @ List.map
        (fun (x, v) -> { History.kind = History.W; var = x; value = v })
        (History.ext_writes h t)
  in
  let sess =
    Array.to_list
      (Array.map
         (fun ts ->
           List.concat_map
             (fun t -> [ half_r t; half_w t ])
             (Array.to_list ts))
         (History.sessions h))
  in
  History.make
    ~label:(History.label h ^ "+split")
    ~complete:(History.complete h) sess

(* ---------- the decision procedure ---------- *)

let check_complete ?budget h level =
  match well_formed h with
  | w :: _ -> { level; verdict = Violation w; split = false }
  | [] -> (
    match level with
    | Read_committed | Read_atomic | Causal ->
      { level; verdict = saturation_check (make_ctx h) level; split = false }
    | Serializability ->
      { level; verdict = ser_check ?budget (make_ctx h); split = false }
    | Snapshot_isolation ->
      let s = split_si h in
      let verdict =
        match well_formed s with
        | w :: _ -> Violation w
        | [] -> ser_check ?budget (make_ctx s)
      in
      { level; verdict; split = true })

let check ?budget h level =
  if not (History.complete h) then
    {
      level;
      verdict =
        Unknown "history reconstructed from a truncated trace; no faithful verdict";
      split = false;
    }
  else check_complete ?budget h level

let check_all ?budget h = List.map (check ?budget h) levels

(* ---------- independent replay oracles ---------- *)

(* Naive saturation of derivable commit-order constraints, written
   with none of the incremental machinery above: repeatedly close
   transitively and scan every axiom instance. Small n only. *)
let derivable c level =
  let nn = c.n + 1 in
  let r = Array.make_matrix nn nn false in
  Array.iter
    (fun ts ->
      Array.iteri
        (fun i t ->
          r.(c.t0).(t) <- true;
          for j = i + 1 to Array.length ts - 1 do
            r.(t).(ts.(j)) <- true
          done)
        ts)
    (History.sessions c.h);
  List.iter (fun (_, src, rdr) -> r.(src).(rdr) <- true) c.pairs;
  let closed = ref false in
  let close () =
    for k = 0 to nn - 1 do
      for i = 0 to nn - 1 do
        if r.(i).(k) then
          for j = 0 to nn - 1 do
            if r.(k).(j) && not r.(i).(j) then r.(i).(j) <- true
          done
      done
    done
  in
  while not !closed do
    close ();
    closed := true;
    List.iter
      (fun (x, t1, t2) ->
        List.iter
          (fun t3 ->
            if t3 <> t1 && t3 <> t2 then
              match level with
              | Serializability ->
                if r.(t3).(t2) && not r.(t3).(t1) then begin
                  r.(t3).(t1) <- true;
                  closed := false
                end;
                if (t1 = c.t0 || r.(t1).(t3)) && not r.(t2).(t3) then begin
                  r.(t2).(t3) <- true;
                  closed := false
                end
              | _ -> ())
          (History.writers c.h x))
      c.pairs
  done;
  r

(* The level premise, evaluated directly from the history (for the
   co-dependent levels, from the independently derived constraints). *)
let premise c level deriv t3 t2 =
  match level with
  | Read_committed ->
    (* t3 sourced a read of t2 placed before t2's read from the pair's
       source — approximated here as: t3 sourced any of t2's reads
       (exact position is checked where the pair is known) *)
    wr c t3 t2
  | Read_atomic -> so c t3 t2 || wr c t3 t2
  | Causal -> (
    match deriv with
    | Some r -> r.(t3).(t2)
    | None -> false)
  | Serializability | Snapshot_isolation -> (
    match deriv with
    | Some r -> r.(t3).(t2)
    | None -> false)

(* Causal reachability for replay: plain closure of SO ∪ WR. *)
let causal_matrix c =
  let nn = c.n + 1 in
  let r = Array.make_matrix nn nn false in
  Array.iter
    (fun ts ->
      Array.iteri
        (fun i t ->
          r.(c.t0).(t) <- true;
          for j = i + 1 to Array.length ts - 1 do
            r.(t).(ts.(j)) <- true
          done)
        ts)
    (History.sessions c.h);
  List.iter (fun (_, src, rdr) -> r.(src).(rdr) <- true) c.pairs;
  for k = 0 to nn - 1 do
    for i = 0 to nn - 1 do
      if r.(i).(k) then
        for j = 0 to nn - 1 do
          if r.(k).(j) then r.(i).(j) <- true
        done
    done
  done;
  r

let rc_premise_at c t2 x_pair t3 =
  (* t3 sourced a read of t2 strictly before t2's read of the pair's
     variable [x_pair] *)
  let rec go = function
    | [] -> false
    | (x, _) :: _ when x = x_pair -> false
    | (_, src) :: rest -> src = t3 || go rest
  in
  go c.read_srcs.(t2)

let resolve_level h level =
  match level with
  | Snapshot_isolation -> (split_si h, Serializability)
  | _ -> (h, level)

let validate_order h0 level0 order =
  let h, level = resolve_level h0 level0 in
  (* For SI the caller already passes split ids; detect that case: the
     order ranges over the split history exactly when level0 = SI. *)
  let c = make_ctx h in
  let order = Array.of_list order in
  let pos = Array.make (c.n + 1) (-2) in
  pos.(c.t0) <- -1;
  let ok = ref (Array.length order = c.n) in
  Array.iteri
    (fun i t ->
      if t < 0 || t >= c.n || pos.(t) <> -2 then ok := false else pos.(t) <- i)
    order;
  !ok
  && Array.for_all
       (fun ts ->
         let sorted = ref true in
         for i = 0 to Array.length ts - 2 do
           if pos.(ts.(i)) >= pos.(ts.(i + 1)) then sorted := false
         done;
         !sorted)
       (History.sessions c.h)
  && List.for_all (fun (_, src, rdr) -> pos.(src) < pos.(rdr)) c.pairs
  && begin
       let deriv =
         match level with
         | Causal -> Some (causal_matrix c)
         | _ -> None
       in
       List.for_all
         (fun (x, t1, t2) ->
           List.for_all
             (fun t3 ->
               t3 = t1 || t3 = t2
               ||
               let p =
                 match level with
                 | Serializability -> pos.(t3) < pos.(t2)
                 | Read_committed -> rc_premise_at c t2 x t3
                 | _ -> premise c level deriv t3 t2
               in
               (not p) || pos.(t3) < pos.(t1))
             (History.writers c.h x))
         c.pairs
     end

let exists_order h0 level0 =
  let h, _ = resolve_level h0 level0 in
  let n = History.n h in
  if n > 8 then invalid_arg "Checker.exists_order: too many transactions";
  let rec perms acc = function
    | [] -> [ List.rev acc ]
    | l ->
      List.concat_map
        (fun x -> perms (x :: acc) (List.filter (fun y -> y <> x) l))
        l
  in
  well_formed h = []
  && List.exists
       (fun o -> validate_order h0 level0 o)
       (perms [] (List.init n Fun.id))

let replay_cycle h0 level0 edges =
  let h, level = resolve_level h0 level0 in
  let c = make_ctx h in
  if c.n > 512 then invalid_arg "Checker.replay_cycle: history too large";
  let deriv =
    match level with
    | Serializability -> Some (derivable c Serializability)
    | Causal -> Some (causal_matrix c)
    | _ -> None
  in
  let valid_edge e =
    e.src >= 0 && e.src <= c.t0 && e.dst >= 0 && e.dst <= c.t0 && e.src <> e.dst
    &&
    match e.reason with
    | Session -> so c e.src e.dst
    | Reads_from x ->
      List.exists (fun (y, t1, t2) -> y = x && t1 = e.src && t2 = e.dst) c.pairs
    | Forced_before { var; source; reader } ->
      let w = e.src in
      e.dst = source && w <> source && w <> reader && writes_var c w var
      && List.exists
           (fun (y, t1, t2) -> y = var && t1 = source && t2 = reader)
           c.pairs
      && (match level with
         | Read_committed -> rc_premise_at c reader var w
         | Read_atomic -> so c w reader || wr c w reader
         | Causal | Serializability -> (Option.get deriv).(w).(reader)
         | Snapshot_isolation -> assert false)
    | Forced_after { var; source; reader } ->
      let w = e.dst in
      e.src = reader && w <> source && w <> reader && writes_var c w var
      && List.exists
           (fun (y, t1, t2) -> y = var && t1 = source && t2 = reader)
           c.pairs
      && (match level with
         | Serializability -> source = c.t0 || (Option.get deriv).(source).(w)
         | _ -> false)
  in
  let k = List.length edges in
  k >= 2
  && List.for_all valid_edge edges
  &&
  let arr = Array.of_list edges in
  Array.for_all
    (fun i -> arr.(i).dst = arr.((i + 1) mod k).src)
    (Array.init k Fun.id)

(* ---------- printing ---------- *)

let node_name ~split ~n t =
  if t = n then "init"
  else if split then Printf.sprintf "T%d.%s" ((t / 2) + 1) (if t mod 2 = 0 then "r" else "c")
  else Printf.sprintf "T%d" (t + 1)

let pp_edge ~split ~n fmt e =
  let nm = node_name ~split ~n in
  let reason =
    match e.reason with
    | Session -> "session order"
    | Reads_from x -> Printf.sprintf "reads %s" x
    | Forced_before { var; source; reader } ->
      Printf.sprintf "axiom on %s: %s already observed by %s, must precede %s"
        var (nm e.src) (nm reader) (nm source)
    | Forced_after { var; source; reader } ->
      Printf.sprintf
        "axiom on %s: %s read %s's write, must precede overwriter %s" var
        (nm reader) (nm source) (nm e.dst)
  in
  Format.fprintf fmt "%s -> %s (%s)" (nm e.src) (nm e.dst) reason

let pp_witness ~split ~n fmt = function
  | Cycle edges ->
    Format.fprintf fmt "@[<v 2>cycle of %d forced edges:" (List.length edges);
    List.iter
      (fun e -> Format.fprintf fmt "@,%a" (pp_edge ~split ~n) e)
      edges;
    Format.fprintf fmt "@]"
  | Dangling_read { reader; var; value } ->
    Format.fprintf fmt "%s reads %s:%d, which no transaction wrote"
      (node_name ~split ~n reader) var value
  | Ambiguous_write { var; value; writers } ->
    Format.fprintf fmt "value %d written to %s by %s" value var
      (String.concat " and " (List.map (node_name ~split ~n) writers))
  | Internal_misread { txn; var; value } ->
    Format.fprintf fmt "%s disagrees with its own write of %s (read %d)"
      (node_name ~split ~n txn) var value
  | No_order { explored } ->
    Format.fprintf fmt
      "exhaustive search proved no valid commit order exists (%d states)"
      explored

let pp_result ~n fmt r =
  let n_eff = if r.split then 2 * n else n in
  match r.verdict with
  | Consistent _ -> Format.fprintf fmt "%-6s consistent" (level_name r.level)
  | Violation w ->
    Format.fprintf fmt "%-6s VIOLATION: %a" (level_name r.level)
      (pp_witness ~split:r.split ~n:n_eff)
      w
  | Unknown msg -> Format.fprintf fmt "%-6s unknown (%s)" (level_name r.level) msg
