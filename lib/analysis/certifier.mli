open Core

(** The scheduler certifier: an executable check of Theorem 1.

    A correct scheduler operating at information level [I] satisfies
    [P ⊆ ∩_{T' ∈ I} C(T')] — its zero-delay fixpoint set cannot exceed
    what every system it might be facing allows. The certifier replays a
    scheduler over every schedule of the format to measure [P]
    empirically ({!Sched.Driver.fixpoint_of}), materialises a finite
    micro-universe of systems at the scheduler's information level over
    [Z_k] ({!Optimality.Universe}), computes the intersection by brute
    force ({!Optimality.Verify.intersection_c}), and reports every
    violating history.

    The universe is necessarily a {e sub}-universe of the paper's (a
    finite domain cannot contain the Herbrand adversary), so the
    intersection computed here is a {e superset} of the true bound:
    a reported violation is a definite bug in the scheduler; a pass is
    a pass up to the universe. The slack [∩C \ P] is also reported — it
    measures how far the scheduler is from optimal at its level. *)

type level =
  | Format_only
      (** The scheduler sees only the format. The universe is all
          semantics and integrity constraints over a single variable —
          where the Theorem 2 adversary (increment/decrement vs double,
          [IC = {x = 0}]) lives. *)
  | Syntactic
      (** The scheduler sees the syntax. The universe is all semantics
          and integrity constraints over the given syntax (the Theorem 3
          setting). *)

val certify :
  ?k:int ->
  ?max_h:int ->
  name:string ->
  make:(unit -> Sched.Scheduler.t) ->
  level:level ->
  Syntax.t ->
  Report.diagnostic list
(** [certify ~name ~make ~level syntax] runs the check over [Z_k]
    (default [k = 2]). Skips with [certify/skipped] when [|H|] exceeds
    [max_h] (default 800) — the replay and the intersection are both
    exhaustive over [H]. Reports [certify/information-bound] as an error
    per violating history (with the history as witness), or as an info
    with the measured [|P|], the bound's size and the slack. *)
