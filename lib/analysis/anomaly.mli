open Core

(** The anomaly detector.

    Takes a schedule of a transaction system, extracts a {e minimal}
    cycle from its conflict graph (shortest cycle, ties broken towards
    the smallest transaction index) and classifies the anomaly in the
    read/write model of {!Core.Rw_model}: the paper's atomic
    read-modify-write steps are expanded into a read immediately
    followed by a write, and the classical anomaly patterns are matched
    on the resulting history. The conflict-graph verdict is
    cross-validated against the brute-force Herbrand serializability
    test (§4.2) — in this step model the two provably coincide, and the
    detector re-checks that on every run.

    Genuine read/write histories (with blind writes and pure reads,
    where the classes [CSR ⊊ VSR ⊊ FSR] separate) are analyzed by
    {!check_history}. *)

type classification =
  | Lost_update of Names.var
      (** A transaction writes a variable between another's read of it
          and that transaction's subsequent write — the first update is
          clobbered unseen. Needs a genuine r/w gap; cannot arise from
          atomic RMW steps. *)
  | Non_repeatable_read of Names.var
      (** A transaction reads the same variable twice with a foreign
          write in between. *)
  | Write_skew of Names.var * Names.var
      (** Two transactions read each other's write targets before
          either writes: anti-dependency edges both ways on two
          distinct variables. *)
  | Dirty_read of Names.var
      (** A transaction reads a value written by a transaction that is
          still active (performs further actions afterwards) — the
          dirty-read shape; there are no aborts in this model, hence
          "shaped". *)
  | Serialization_cycle
      (** A conflict cycle not matching a more specific pattern
          (e.g. any cycle through three or more transactions). *)

val classification_rule : classification -> string
(** The diagnostic rule slug, e.g. ["anomaly/write-skew"]. *)

val expand : Syntax.t -> Schedule.t -> Rw_model.history
(** Each atomic step [T_ij] on [x] becomes [r(x); w(x)] — adjacent, so
    no foreign action ever separates a step's read from its write. *)

val minimal_cycle : Digraph.t -> int list option
(** A shortest directed cycle, rotated to start at its smallest vertex;
    among equally short cycles the one through the smallest vertices.
    [None] iff acyclic. *)

val conflict_graph : int -> Rw_model.history -> Digraph.t
(** Transaction-level conflict graph of a read/write history ([r-w],
    [w-r] and [w-w] pairs on the same variable). *)

val classify : int -> Rw_model.history -> int list -> classification
(** [classify n h cycle] matches the anomaly patterns over the history
    restricted to the transactions of a minimal [cycle]. Pair patterns
    (lost update, non-repeatable read, write skew, dirty read) are only
    matched when the minimal cycle has length 2; longer cycles are
    {!Serialization_cycle}. *)

val check : Syntax.t -> Schedule.t -> Report.diagnostic list
(** The full pass: serializability verdict (with a serial-order or
    minimal-cycle witness), anomaly classification, and the Herbrand
    cross-validation (skipped with an informational diagnostic beyond 6
    transactions — the brute-force test enumerates [n!] serial
    schedules). *)

val check_history : int -> Rw_model.history -> Report.diagnostic list
(** Same pass over a genuine read/write history; the cross-validation
    here is the polygraph view-serializability test, and a
    conflict-cycle finding is downgraded with an informational note
    when the history is view-serializable anyway (the [CSR ⊊ VSR]
    gap). *)
