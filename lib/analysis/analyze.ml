open Core

type request = {
  syntax : Syntax.t;
  schedule : int array option;
  policy : string option;
  certify : string option;
  k : int;
}

let request ?schedule ?policy ?certify ?(k = 2) syntax =
  { syntax; schedule; policy; certify; k }

(* A transaction is a run of steps, one variable letter each: [x] is an
   update of x, [X] a read of x, and a sigil before the letter declares
   the op — [+x] incr, [-x] decr, [>x] enqueue, [^x] max, [!x] blind
   write. "xy,+a+a,Xy" = T1 updates x then y, T2 increments a twice,
   T3 reads x then updates y. *)
let parse_syntax spec =
  let groups = String.split_on_char ',' spec in
  let parse_tx g =
    if g = "" then invalid_arg "empty transaction in --syntax";
    let steps = ref [] in
    let i = ref 0 in
    let len = String.length g in
    while !i < len do
      let sigil =
        match g.[!i] with
        | '+' -> Some Op.Incr
        | '-' -> Some Op.Decr
        | '>' -> Some Op.Enqueue
        | '^' -> Some Op.Max
        | '!' -> Some Op.Write
        | _ -> None
      in
      (match sigil with
      | Some op ->
        if !i + 1 >= len then
          invalid_arg "dangling op sigil in --syntax (expected a variable)";
        steps :=
          (op, String.make 1 (Char.lowercase_ascii g.[!i + 1])) :: !steps;
        i := !i + 2
      | None ->
        let c = g.[!i] in
        (if c >= 'A' && c <= 'Z' then
           steps := (Op.Read, String.make 1 (Char.lowercase_ascii c)) :: !steps
         else steps := (Op.Update, String.make 1 c) :: !steps);
        incr i)
    done;
    List.rev !steps
  in
  Syntax.of_lists_typed (List.map parse_tx groups)

let parse_interleaving spec =
  Array.init (String.length spec) (fun i ->
      let c = spec.[i] in
      if c < '0' || c > '9' then invalid_arg "--schedule expects digits";
      Char.code c - Char.code '0')

let policy_of_name = function
  | "2pl" -> Locking.Two_phase.policy
  | "2pl'" | "2plprime" -> Locking.Two_phase_prime.policy ~distinguished:"x"
  | "preclaim" -> Locking.Preclaim.policy
  | "mutex" -> Locking.Mutex_policy.policy
  | name ->
    invalid_arg ("unknown policy " ^ name ^ " (2pl, 2pl', preclaim, mutex)")

let scheduler_of_name syntax name =
  let e = Sched.Registry.find_exn name in
  fun () -> e.Sched.Registry.make syntax

let certifier_level = function
  | "serial" -> Certifier.Format_only
  | _ -> Certifier.Syntactic

let syntax_string syntax =
  let n = Syntax.n_transactions syntax in
  let rows =
    List.init n (fun i ->
        List.init (Syntax.length syntax i) (fun j ->
            Syntax.var syntax (Names.step i j)))
  in
  let flat = List.concat rows in
  let sep =
    if List.for_all (fun v -> String.length v = 1) flat then "" else " "
  in
  String.concat "," (List.map (String.concat sep) rows)

let run req =
  let diags = ref [] in
  let add ds = diags := !diags @ ds in
  (match req.schedule with
  | Some il ->
    let h = Schedule.of_interleaving il in
    add (Anomaly.check req.syntax h)
  | None -> ());
  (match req.policy with
  | Some name ->
    let policy = policy_of_name name in
    add (Lock_lint.lint (Lock_lint.of_policy policy req.syntax))
  | None -> ());
  (match req.certify with
  | Some name ->
    add
      (Certifier.certify ~k:req.k ~name
         ~make:(scheduler_of_name req.syntax name)
         ~level:(certifier_level name) req.syntax)
  | None -> ());
  if !diags = [] then
    add
      [
        Report.diagnostic ~rule:"analyze/nothing-to-do"
          ~severity:Report.Info
          "no pass selected: give --schedule for the anomaly detector, \
           --policy for the lock linter, --certify for the scheduler \
           certifier";
      ];
  Report.make ~target:("system " ^ syntax_string req.syntax) !diags
