open Core

(** The lock-policy linter.

    Statically checks a locked transaction system (a locking policy
    applied to a syntax, or a hand-written locking given as raw step
    lists) for:

    - {b pairing} ([lock/pairing], error): every [unlock X] matches an
      earlier unmatched [lock X], no double acquisition, nothing held at
      transaction end — the legality alphabet of §5.1;
    - {b structure} ([lock/malformed], error): the action steps are
      exactly the base transaction's steps in program order;
    - {b coverage} ([lock/coverage], error): every access to a variable
      happens while its lock bit is held — §5.3's well-formedness
      assumption;
    - {b two-phasedness} ([lock/two-phase], warning when violated, info
      when satisfied) — §5.2;
    - {b separability} ([lock/non-separable], warning; [lock/separable],
      info) when a policy is supplied: the transformation of each
      transaction is recomputed on the transaction alone and compared —
      §5.4's definition, checked empirically on this system;
    - {b deadlock} ([lock/deadlock], warning): the n-dimensional
      progress geometry's deadlock region (§5.3), reported with a
      concrete doomed progress vector and a legal interleaving prefix
      that reaches it;
    - {b output serializability} ([lock/non-serializable-output], error):
      exhaustively, every legal locked interleaving must project to a
      conflict-serializable base schedule — the Figure 4(c) criterion —
      with a violating interleaving as witness. *)

type input = {
  base : Syntax.t;
  txs : Locking.Locked.step list list;
      (** may be ill-formed; the linter reports *)
  policy : Locking.Policy.t option;
      (** when present, enables the separability check *)
}

val of_policy : Locking.Policy.t -> Syntax.t -> input
val of_locked : ?policy:Locking.Policy.t -> Locking.Locked.t -> input

val reaching_prefix : Locking.Geometry_nd.t -> int array -> int array
(** A legal monotone interleaving prefix from the origin to a reachable,
    non-forbidden grid point (used to make deadlock witnesses
    replayable). *)

val lint : ?max_interleavings:int -> input -> Report.diagnostic list
(** Run every applicable check. [max_interleavings] (default [50_000])
    bounds the exhaustive output-serializability enumeration; when the
    locked system is larger the check is skipped with an informational
    diagnostic ([lock/outputs-skipped]) — no silent truncation. The
    geometry pass is likewise skipped ([lock/geometry-skipped]) when the
    progress grid would exceed {!Locking.Geometry_nd.analyse}'s guard. *)
