open Core

type kind = R | W

type event = { kind : kind; var : Names.var; value : int }

let initial_value = 0

type t = {
  label : string;
  complete : bool;
  txns : event list array;
  session : int array;
  pos : int array;
  sessions : int array array;
  ext_reads : (Names.var * int) list array;
  ext_writes : (Names.var * int) list array;
  writers_tbl : (Names.var, int list) Hashtbl.t;
  writer_tbl : (Names.var * int, int) Hashtbl.t;
  n_events : int;
}

let label h = h.label
let complete h = h.complete
let n h = Array.length h.txns
let n_events h = h.n_events
let events h t = h.txns.(t)
let n_sessions h = Array.length h.sessions
let session_of h t = h.session.(t)
let session_pos h t = h.pos.(t)
let sessions h = h.sessions
let ext_reads h t = h.ext_reads.(t)
let ext_writes h t = h.ext_writes.(t)

let writers h x =
  match Hashtbl.find_opt h.writers_tbl x with Some l -> l | None -> []

let writer_of h x v =
  if v = initial_value then None else Hashtbl.find_opt h.writer_tbl (x, v)

let vars h =
  let s =
    Array.fold_left
      (fun s evs ->
        List.fold_left (fun s e -> Names.Vset.add e.var s) s evs)
      Names.Vset.empty h.txns
  in
  Names.Vset.elements s

(* External reads: first read per variable before any own write of it.
   External writes: last write per variable (sorted by name). *)
let externals evs =
  let reads = ref [] in
  let read_seen = ref Names.Vset.empty in
  let written = ref Names.Vmap.empty in
  List.iter
    (fun e ->
      match e.kind with
      | R ->
        if
          (not (Names.Vmap.mem e.var !written))
          && not (Names.Vset.mem e.var !read_seen)
        then begin
          reads := (e.var, e.value) :: !reads;
          read_seen := Names.Vset.add e.var !read_seen
        end
      | W -> written := Names.Vmap.add e.var e.value !written)
    evs;
  (List.rev !reads, Names.Vmap.bindings !written)

let build ~label ~complete (sess : event list list list) =
  let txns = Array.of_list (List.concat sess) in
  let nt = Array.length txns in
  let session = Array.make nt 0 in
  let pos = Array.make nt 0 in
  let sessions =
    let id = ref 0 in
    List.map
      (fun ts ->
        Array.of_list
          (List.mapi
             (fun p _ ->
               let t = !id in
               incr id;
               session.(t) <- 0;
               (* session id patched below *)
               pos.(t) <- p;
               t)
             ts))
      sess
    |> Array.of_list
  in
  Array.iteri
    (fun s ts -> Array.iter (fun t -> session.(t) <- s) ts)
    sessions;
  let ext_reads = Array.make nt [] in
  let ext_writes = Array.make nt [] in
  let writers_rev : (Names.var, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let writer_tbl = Hashtbl.create 256 in
  let n_events = ref 0 in
  for t = 0 to nt - 1 do
    n_events := !n_events + List.length txns.(t);
    let r, w = externals txns.(t) in
    ext_reads.(t) <- r;
    ext_writes.(t) <- w;
    List.iter
      (fun (x, v) ->
        (match Hashtbl.find_opt writers_rev x with
        | Some l -> l := t :: !l
        | None -> Hashtbl.add writers_rev x (ref [ t ]));
        if not (Hashtbl.mem writer_tbl (x, v)) then
          Hashtbl.add writer_tbl (x, v) t)
      w
  done;
  let writers_tbl = Hashtbl.create (Hashtbl.length writers_rev) in
  Hashtbl.iter (fun x l -> Hashtbl.add writers_tbl x (List.rev !l)) writers_rev;
  {
    label;
    complete;
    txns;
    session;
    pos;
    sessions;
    ext_reads;
    ext_writes;
    writers_tbl;
    writer_tbl;
    n_events = !n_events;
  }

let make ?(label = "history") ?(complete = true) sess =
  build ~label ~complete sess

(* ---------- construction from schedules and traces ---------- *)

(* Value-semantics replay: each RMW step reads the variable's current
   value and installs a globally fresh one; an [Op.Read] step only
   reads. Blind and semantic ops ([Op.observes op = false]) install a
   fresh value without emitting a read event — the client observes
   nothing of the value they replaced, which is exactly what lets the
   semantic scheduler reorder them: the checker's reads-from axioms
   place no constraint between two blind writes.

   The projection is sound but incomplete for semantic histories: the
   checker can never be tricked into accepting an incorrect history,
   but a commutative-serializable interleaving whose rw projection is
   not rw-serializable (e.g. a transaction reads a counter it bumped
   after a foreign bump slipped in between — fine under counter
   semantics, a lost-update shape to the INT axiom) is correctly
   rejected at the rw level. Observer-free semantic histories (every
   event W-only) always verify; test/test_semantic.ml pins both
   directions. *)
let replay ~label ~complete syntax (steps : (int * int) list) =
  let nt = Syntax.n_transactions syntax in
  let bufs = Array.make nt [] in
  let cur : (Names.var, int) Hashtbl.t = Hashtbl.create 64 in
  let fresh = ref initial_value in
  List.iter
    (fun (tx, idx) ->
      if tx < 0 || tx >= nt then
        invalid_arg (Printf.sprintf "History: step of unknown transaction %d" tx);
      if idx < 0 || idx >= Syntax.length syntax tx then
        invalid_arg
          (Printf.sprintf "History: transaction %d has no step %d" tx idx);
      let x = Syntax.var syntax (Names.step tx idx) in
      let v = match Hashtbl.find_opt cur x with Some v -> v | None -> initial_value in
      let op = Syntax.kind syntax (Names.step tx idx) in
      if Op.observes op then
        bufs.(tx) <- { kind = R; var = x; value = v } :: bufs.(tx);
      if Op.writes op then begin
        incr fresh;
        Hashtbl.replace cur x !fresh;
        bufs.(tx) <- { kind = W; var = x; value = !fresh } :: bufs.(tx)
      end)
    steps;
  build ~label ~complete
    (Array.to_list (Array.map (fun evs -> [ List.rev evs ]) bufs))

let of_schedule ?(label = "schedule") syntax sched =
  replay ~label ~complete:true syntax
    (Array.to_list
       (Array.map (fun (s : Names.step_id) -> (s.tx, s.idx)) sched))

let of_steps ?(label = "trace") ~complete syntax steps =
  replay ~label ~complete syntax steps

(* ---------- mutations ---------- *)

type mutation = Swap_reads | Drop_write | Rewire_read

let mutations = [ Swap_reads; Drop_write; Rewire_read ]

let mutation_name = function
  | Swap_reads -> "swap-reads"
  | Drop_write -> "drop-write"
  | Rewire_read -> "rewire-read"

let mutation_of_name s =
  List.find_opt (fun m -> mutation_name m = s) mutations

let with_txn h t evs =
  let txns = Array.copy h.txns in
  txns.(t) <- evs;
  let sess =
    Array.to_list
      (Array.map
         (fun ts -> List.map (fun t -> txns.(t)) (Array.to_list ts))
         h.sessions)
  in
  build ~label:h.label ~complete:h.complete sess

(* Replace the first (external) read of [x] with value [v']. *)
let replace_ext_read evs x v' =
  let rec go own_write acc = function
    | [] -> List.rev acc
    | e :: rest ->
      if e.kind = R && e.var = x && not own_write then
        List.rev_append acc ({ e with value = v' } :: rest)
      else
        go (own_write || (e.kind = W && e.var = x)) (e :: acc) rest
  in
  go false [] evs

(* Delete the last write of [x]. *)
let drop_last_write evs x =
  let rec go acc = function
    | [] -> List.rev acc
    | e :: rest ->
      if e.kind = W && e.var = x then List.rev_append acc rest
      else go (e :: acc) rest
  in
  go [] (List.rev evs) |> List.rev

let value_of x l = List.assoc_opt x l

let mutate kind rng h =
  let nt = n h in
  let sites = ref [] in
  (match kind with
  | Swap_reads ->
    (* t2 reads x from t1; t1 reads x and t2 writes x: point t1's read
       at t2's write instead. *)
    for t2 = 0 to nt - 1 do
      List.iter
        (fun (x, v) ->
          match writer_of h x v with
          | Some t1 when t1 <> t2 -> (
            match (value_of x h.ext_reads.(t1), value_of x h.ext_writes.(t2)) with
            | Some _, Some v2 -> sites := (t1, x, v2) :: !sites
            | _ -> ())
          | _ -> ())
        h.ext_reads.(t2)
    done
  | Drop_write ->
    (* t1's write of x is read by someone else: delete it. *)
    for t2 = 0 to nt - 1 do
      List.iter
        (fun (x, v) ->
          match writer_of h x v with
          | Some t1 when t1 <> t2 -> sites := (t1, x, v) :: !sites
          | _ -> ())
        h.ext_reads.(t2)
    done
  | Rewire_read ->
    (* chain t1 -x-> t2 -x-> t3 with t3 an x-writer: t3 skips back to
       t1's value (write skew on x, invisible to the reads-from graph) *)
    for t3 = 0 to nt - 1 do
      List.iter
        (fun (x, v) ->
          match writer_of h x v with
          | Some t2 when t2 <> t3 -> (
            match (value_of x h.ext_reads.(t2), value_of x h.ext_writes.(t3)) with
            | Some v_prev, Some _
              when writer_of h x v_prev <> Some t3 && v_prev <> v ->
              sites := (t3, x, v_prev) :: !sites
            | _ -> ())
          | _ -> ())
        h.ext_reads.(t3)
    done);
  match !sites with
  | [] -> None
  | sites ->
    let sites = List.sort compare sites in
    let t, x, v = List.nth sites (Random.State.int rng (List.length sites)) in
    let label = h.label ^ "+" ^ mutation_name kind in
    let h' =
      match kind with
      | Swap_reads | Rewire_read ->
        with_txn h t (replace_ext_read h.txns.(t) x v)
      | Drop_write -> with_txn h t (drop_last_write h.txns.(t) x)
    in
    Some { h' with label }

(* ---------- generation ---------- *)

let generate ~seed ~sessions ~txns ~steps ~n_vars =
  if sessions < 1 || txns < 0 || steps < 1 || n_vars < 1 then
    invalid_arg "History.generate";
  let rng = Random.State.make [| seed; 0x9e3779b9 |] in
  let cur = Array.make n_vars initial_value in
  let var i = "v" ^ string_of_int i in
  let fresh = ref initial_value in
  let sess = Array.make sessions [] in
  (* global serial execution order 0, 1, ..., dealt round-robin: the
     session order is a suborder of the execution order, so the result
     is consistent at every level with witness order 0..txns-1 *)
  for t = 0 to txns - 1 do
    let evs = ref [] in
    for _ = 1 to steps do
      let i = Random.State.int rng n_vars in
      incr fresh;
      evs :=
        { kind = W; var = var i; value = !fresh }
        :: { kind = R; var = var i; value = cur.(i) }
        :: !evs;
      cur.(i) <- !fresh
    done;
    let s = t mod sessions in
    sess.(s) <- List.rev !evs :: sess.(s)
  done;
  let sess = Array.to_list (Array.map List.rev sess) in
  build
    ~label:
      (Printf.sprintf "generated(seed=%d,s=%d,t=%d,k=%d,v=%d)" seed sessions
         txns steps n_vars)
    ~complete:true sess

(* ---------- printing ---------- *)

let pp_event fmt e =
  Format.fprintf fmt "%s %s:%d"
    (match e.kind with R -> "R" | W -> "W")
    e.var e.value

let pp fmt h =
  Format.fprintf fmt "@[<v>history %S (%d txns, %d events%s)" h.label (n h)
    h.n_events
    (if h.complete then "" else ", truncated");
  Array.iteri
    (fun s ts ->
      Format.fprintf fmt "@,s%d:" s;
      Array.iter
        (fun t ->
          Format.fprintf fmt " T%d[%a]" (t + 1)
            (Format.pp_print_list
               ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
               pp_event)
            h.txns.(t))
        ts)
    h.sessions;
  Format.fprintf fmt "@]"
