open Core

type classification =
  | Lost_update of Names.var
  | Non_repeatable_read of Names.var
  | Write_skew of Names.var * Names.var
  | Dirty_read of Names.var
  | Serialization_cycle

let classification_rule = function
  | Lost_update _ -> "anomaly/lost-update"
  | Non_repeatable_read _ -> "anomaly/non-repeatable-read"
  | Write_skew _ -> "anomaly/write-skew"
  | Dirty_read _ -> "anomaly/dirty-read"
  | Serialization_cycle -> "anomaly/serialization-cycle"

let classification_message = function
  | Lost_update x ->
    Printf.sprintf
      "lost update on %s: a foreign write lands between a read of %s and \
       the dependent write, and is clobbered unseen"
      x x
  | Non_repeatable_read x ->
    Printf.sprintf
      "non-repeatable read of %s: the same transaction reads %s twice \
       around a foreign write"
      x x
  | Write_skew (x, y) ->
    Printf.sprintf
      "write skew on (%s, %s): each transaction reads the variable the \
       other is about to write — anti-dependencies both ways"
      x y
  | Dirty_read x ->
    Printf.sprintf
      "dirty-read-shaped conflict on %s: a transaction reads a value whose \
       writer is still active"
      x
  | Serialization_cycle ->
    "conflict cycle through three or more transactions; no pairwise \
     anomaly pattern applies"

(* ---------- minimal cycles ---------- *)

let minimal_cycle g =
  let n = Digraph.n_vertices g in
  let best = ref None in
  let best_len = ref max_int in
  for v = 0 to n - 1 do
    if Digraph.has_edge g v v then begin
      if 1 < !best_len then begin
        best_len := 1;
        best := Some [ v ]
      end
    end
    else begin
      (* BFS from v; a cycle through v closes on an edge u -> v. *)
      let dist = Array.make n (-1) in
      let parent = Array.make n (-1) in
      dist.(v) <- 0;
      let q = Queue.create () in
      Queue.add v q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun w ->
            if dist.(w) < 0 then begin
              dist.(w) <- dist.(u) + 1;
              parent.(w) <- u;
              Queue.add w q
            end)
          (Digraph.succ g u)
      done;
      List.iter
        (fun u ->
          if u <> v && dist.(u) >= 0 && Digraph.has_edge g u v then
            let len = dist.(u) + 1 in
            if len < !best_len then begin
              let rec path w acc =
                if w = v then v :: acc else path parent.(w) (w :: acc)
              in
              best_len := len;
              best := Some (path u [])
            end)
        (Digraph.pred g v)
    end
  done;
  match !best with
  | None -> None
  | Some cycle ->
    (* rotate so the smallest vertex leads *)
    let m = List.fold_left min (List.hd cycle) cycle in
    let rec rotate = function
      | x :: rest when x = m -> x :: rest
      | x :: rest -> rotate (rest @ [ x ])
      | [] -> []
    in
    Some (rotate cycle)

(* ---------- read/write expansion and conflicts ---------- *)

let expand syntax h =
  Array.concat
    (List.map
       (fun (s : Names.step_id) ->
         let v = Syntax.var syntax s in
         [|
           { Rw_model.id = Names.step s.tx (2 * s.idx);
             action = Rw_model.read v };
           { Rw_model.id = Names.step s.tx ((2 * s.idx) + 1);
             action = Rw_model.write v };
         |])
       (Array.to_list h))

let var_of p (h : Rw_model.history) =
  Rw_model.var_of_action_exposed h.(p).Rw_model.action

let tx_of p (h : Rw_model.history) = h.(p).Rw_model.id.Names.tx

let is_write p (h : Rw_model.history) = Rw_model.is_write h.(p).Rw_model.action

let is_read p h = not (is_write p h)

let conflict_graph n (h : Rw_model.history) =
  let g = Digraph.create n in
  let len = Array.length h in
  for p = 0 to len - 1 do
    for q = p + 1 to len - 1 do
      if
        tx_of p h <> tx_of q h
        && var_of p h = var_of q h
        && (is_write p h || is_write q h)
      then Digraph.add_edge g (tx_of p h) (tx_of q h)
    done
  done;
  g

(* ---------- pattern matching on a two-transaction cycle ---------- *)

let positions pred h =
  let acc = ref [] in
  Array.iteri (fun p _ -> if pred p then acc := p :: !acc) h;
  List.rev !acc

let lost_update h (a, b) =
  (* t reads x at p, t's next action on x is its write at q, and o
     writes x at some m in (p, q). *)
  let check (t, o) =
    List.find_map
      (fun p ->
        let x = var_of p h in
        let next_on_x =
          List.find_opt
            (fun q -> q > p && tx_of q h = t && var_of q h = x)
            (positions (fun q -> q > p) h)
        in
        match next_on_x with
        | Some q when is_write q h ->
          if
            List.exists
              (fun m ->
                m > p && m < q && tx_of m h = o && var_of m h = x
                && is_write m h)
              (positions (fun _ -> true) h)
          then Some x
          else None
        | _ -> None)
      (positions (fun p -> tx_of p h = t && is_read p h) h)
  in
  match check (a, b) with Some x -> Some x | None -> check (b, a)

let non_repeatable h (a, b) =
  let check (t, o) =
    List.find_map
      (fun p ->
        let x = var_of p h in
        List.find_map
          (fun q ->
            if tx_of q h = t && var_of q h = x && is_read q h then
              if
                List.exists
                  (fun m ->
                    m > p && m < q && tx_of m h = o && var_of m h = x
                    && is_write m h)
                  (positions (fun _ -> true) h)
              then Some x
              else None
            else None)
          (positions (fun q -> q > p) h))
      (positions (fun p -> tx_of p h = t && is_read p h) h)
  in
  match check (a, b) with Some x -> Some x | None -> check (b, a)

let rw_edge h t o =
  (* an anti-dependency: t reads x before o writes x *)
  List.find_map
    (fun p ->
      let x = var_of p h in
      if
        List.exists
          (fun q ->
            q > p && tx_of q h = o && var_of q h = x && is_write q h)
          (positions (fun _ -> true) h)
      then Some x
      else None)
    (positions (fun p -> tx_of p h = t && is_read p h) h)

let write_skew h (a, b) =
  match rw_edge h a b with
  | None -> None
  | Some x -> (
    (* a second anti-dependency back, on a different variable *)
    let back =
      List.find_map
        (fun p ->
          let y = var_of p h in
          if
            y <> x
            && List.exists
                 (fun q ->
                   q > p && tx_of q h = a && var_of q h = y && is_write q h)
                 (positions (fun _ -> true) h)
          then Some y
          else None)
        (positions (fun p -> tx_of p h = b && is_read p h) h)
    in
    match back with Some y -> Some (x, y) | None -> None)

let dirty_read h (a, b) =
  let last_write_before q x =
    List.fold_left
      (fun acc m ->
        if m < q && var_of m h = x && is_write m h then Some m else acc)
      None
      (positions (fun _ -> true) h)
  in
  let check (t, o) =
    List.find_map
      (fun q ->
        let x = var_of q h in
        match last_write_before q x with
        | Some p
          when tx_of p h = t
               && List.exists
                    (fun m -> m > q && tx_of m h = t)
                    (positions (fun _ -> true) h) ->
          Some x
        | _ -> None)
      (positions (fun q -> tx_of q h = o && is_read q h) h)
  in
  match check (a, b) with Some x -> Some x | None -> check (b, a)

let classify _n h cycle =
  match cycle with
  | [ a; b ] -> (
    match lost_update h (a, b) with
    | Some x -> Lost_update x
    | None -> (
      match non_repeatable h (a, b) with
      | Some x -> Non_repeatable_read x
      | None -> (
        match write_skew h (a, b) with
        | Some (x, y) -> Write_skew (x, y)
        | None -> (
          match dirty_read h (a, b) with
          | Some x -> Dirty_read x
          | None -> Serialization_cycle))))
  | _ -> Serialization_cycle

(* ---------- the passes ---------- *)

let order_string order =
  String.concat " "
    (List.map (fun i -> "T" ^ string_of_int (i + 1)) (Array.to_list order))

(* For each consecutive cycle edge a -> b, the first pair of steps of the
   base schedule justifying it. *)
let edge_steps syntax h cycle =
  let len = Array.length h in
  let edge a b =
    let found = ref None in
    for p = 0 to len - 1 do
      for q = p + 1 to len - 1 do
        if
          !found = None
          && h.(p).Names.tx = a
          && h.(q).Names.tx = b
          && Syntax.var syntax h.(p) = Syntax.var syntax h.(q)
        then found := Some [ h.(p); h.(q) ]
      done
    done;
    match !found with Some s -> s | None -> []
  in
  let rec around = function
    | a :: (b :: _ as rest) -> edge a b @ around rest
    | [ last ] -> edge last (List.hd cycle)
    | [] -> []
  in
  let pos s =
    let r = ref 0 in
    Array.iteri (fun i x -> if Names.equal_step x s then r := i) h;
    !r
  in
  List.sort_uniq Names.compare_step (around cycle)
  |> List.sort (fun s1 s2 -> compare (pos s1) (pos s2))

let herbrand_cross syntax h ~conflict_verdict =
  let n = Syntax.n_transactions syntax in
  if n > 6 then
    [
      Report.diagnostic ~rule:"anomaly/herbrand-skipped" ~severity:Info
        (Printf.sprintf
           "Herbrand cross-validation skipped: %d transactions would need \
            %d! serial executions"
           n n);
    ]
  else
    let hb = Herbrand.serializable syntax h in
    if hb = conflict_verdict then
      [
        Report.diagnostic ~rule:"anomaly/herbrand-agreement" ~severity:Info
          "brute-force Herbrand test agrees with the conflict-graph \
           verdict (the step model has no blind writes, so the tests \
           provably coincide)";
      ]
    else
      [
        Report.diagnostic ~rule:"anomaly/herbrand-disagreement"
          ~severity:Error
          (Printf.sprintf
             "conflict test says %s but Herbrand brute force says %s — \
              this contradicts the step-model equivalence; please report"
             (if conflict_verdict then "serializable" else "non-serializable")
             (if hb then "serializable" else "non-serializable"));
      ]

let check syntax h =
  if not (Schedule.is_schedule_of (Syntax.format syntax) h) then
    [
      Report.diagnostic ~rule:"anomaly/not-a-schedule" ~severity:Error
        "the given step sequence is not a schedule of the syntax (wrong \
         multiset of steps or per-transaction order violated)";
    ]
  else
    let g = Conflict.graph syntax h in
    match minimal_cycle g with
    | None ->
      let order_msg =
        match Conflict.serialization_orders syntax h with
        | Some order -> ": equivalent serial order " ^ order_string order
        | None -> ""
      in
      Report.diagnostic ~rule:"anomaly/serializable" ~severity:Info
        ("schedule is conflict-serializable" ^ order_msg)
      :: herbrand_cross syntax h ~conflict_verdict:true
    | Some cycle ->
      let rwh = expand syntax h in
      let cls = classify (Syntax.n_transactions syntax) rwh cycle in
      Report.diagnostic ~rule:(classification_rule cls) ~severity:Error
        ~txs:cycle
        ~steps:(edge_steps syntax h cycle)
        ~witness:(Report.Cycle cycle)
        (classification_message cls
        ^ "; the schedule is not serializable (minimal conflict cycle \
           witness attached)")
      :: herbrand_cross syntax h ~conflict_verdict:false

let check_history n (h : Rw_model.history) =
  let g = conflict_graph n h in
  match minimal_cycle g with
  | None ->
    [
      Report.diagnostic ~rule:"anomaly/serializable" ~severity:Info
        "history is conflict-serializable";
    ]
  | Some cycle ->
    let cls = classify n h cycle in
    let steps =
      List.sort_uniq Names.compare_step
        (List.concat_map
           (fun t ->
             List.filter_map
               (fun (s : Rw_model.step) ->
                 if s.id.Names.tx = t then Some s.id else None)
               (Array.to_list h))
           cycle)
    in
    let base =
      Report.diagnostic ~rule:(classification_rule cls) ~severity:Error
        ~txs:cycle ~steps ~witness:(Report.Cycle cycle)
        (classification_message cls
        ^ "; the history is not conflict-serializable")
    in
    if n <= 6 && Rw_model.view_serializable_polygraph n h then
      [
        base;
        Report.diagnostic ~rule:"anomaly/view-serializable" ~severity:Info
          "the history is nevertheless view-serializable (the CSR ⊊ VSR \
           gap: blind writes hide the conflict from any view)";
      ]
    else [ base ]
