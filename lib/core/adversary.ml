let interruption h =
  (* Find steps T_ij, T_kl, T_i(j+1) at positions p < q < r with k <> i.
     We look for an adjacent pair (j, j+1) of some transaction whose
     occurrences in h are not adjacent; any step in the gap is foreign. *)
  let len = Array.length h in
  let result = ref None in
  (try
     for p = 0 to len - 1 do
       let s = h.(p) in
       (* position of the next step of the same transaction *)
       for r = p + 1 to len - 1 do
         if !result = None && h.(r).Names.tx = s.Names.tx then
           if h.(r).Names.idx = s.Names.idx + 1 && r > p + 1 then begin
             result := Some (s, h.(p + 1), h.(r));
             raise Exit
           end
       done
     done
   with Exit -> ());
  !result

let identity_step j = Expr.Ast.Local j

let theorem2_adversary fmt h =
  match interruption h with
  | None -> None
  | Some (si, sk, _si') ->
    let open Expr.Ast in
    let syntax =
      Syntax.make (Array.map (fun m -> Array.make m "x") fmt)
    in
    let interp =
      Array.mapi
        (fun i m ->
          Array.init m (fun j ->
              if i = si.Names.tx && j = si.Names.idx then
                Add (Local j, int 1)
              else if i = si.Names.tx && j = si.Names.idx + 1 then
                Sub (Local j, int 1)
              else if i = sk.Names.tx && j = sk.Names.idx then
                Mul (Local j, int 2)
              else identity_step j))
        fmt
    in
    let ic = System.Pred (Eq (Global "x", int 0)) in
    Some (System.make ~ic syntax interp)

let theorem2_refutes fmt h =
  match theorem2_adversary fmt h with
  | None -> false
  | Some sys ->
    let zero = State.of_ints [ ("x", 0) ] in
    let probes = [ zero ] in
    Exec.basic_assumption sys ~probes
    && System.consistent sys zero
    && not (System.consistent sys (Exec.run sys zero h))

(* How many times does transaction [i] occur in a Herbrand state? In the
   read-modify-write model every application node survives inside the
   final terms, so counting occurrences of the first-step symbol f_i1
   recovers the exact multiset of transactions in any serial
   concatenation producing the state. *)
module Tset = Set.Make (struct
  type t = Herbrand.term

  let compare = Herbrand.compare_term
end)

let multiplicities n (g : Herbrand.hstate) =
  (* Distinct application events: the same App node can occur in several
     variables' final terms (once as a surviving value, once embedded in
     a later local read), so we count distinct subterms. Two executions
     of the same step always yield distinct terms because each read
     strictly grows the history it embeds. *)
  let subterms = ref Tset.empty in
  let rec collect (t : Herbrand.term) =
    if not (Tset.mem t !subterms) then begin
      subterms := Tset.add t !subterms;
      match t with
      | Herbrand.Init _ -> ()
      | Herbrand.App (_, args) -> List.iter collect args
      | Herbrand.Sem (_, _, base) -> collect base
    end
  in
  Names.Vmap.iter (fun _ t -> collect t) g;
  let counts = Array.make n 0 in
  Tset.iter
    (function
      | Herbrand.App (s, _) when s.Names.idx = 0 ->
        counts.(s.Names.tx) <- counts.(s.Names.tx) + 1
      | Herbrand.Sem (_, ids, _) ->
        List.iter
          (fun (s : Names.step_id) ->
            if s.Names.idx = 0 then counts.(s.Names.tx) <- counts.(s.Names.tx) + 1)
          ids
      | Herbrand.App _ | Herbrand.Init _ -> ())
    !subterms;
  counts

let serial_hstate syntax order_list =
  (* symbolic execution of a concatenation of complete transactions *)
  let fmt = Syntax.format syntax in
  let g = ref (Herbrand.initial syntax) in
  List.iter
    (fun i ->
      let locals = Array.map (fun m -> Array.make m None) fmt in
      let st = ref (!g, locals) in
      for j = 0 to fmt.(i) - 1 do
        st := Herbrand.exec_step syntax !st (Names.step i j)
      done;
      g := fst !st)
    order_list;
  !g

let herbrand_reachable ?slack:_ syntax target =
  let n = Syntax.n_transactions syntax in
  let mult = multiplicities n target in
  (* depth-first enumeration of the permutations of the multiset given by
     [mult], comparing symbolic final states *)
  let remaining = Array.copy mult in
  let rec go prefix_rev =
    if Array.for_all (fun c -> c = 0) remaining then
      Herbrand.equal_state (serial_hstate syntax (List.rev prefix_rev)) target
    else begin
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < n do
        if remaining.(!i) > 0 then begin
          remaining.(!i) <- remaining.(!i) - 1;
          if go (!i :: prefix_rev) then found := true;
          remaining.(!i) <- remaining.(!i) + 1
        end;
        incr i
      done;
      !found
    end
  in
  go []

let theorem3_refutes syntax h =
  not (herbrand_reachable syntax (Herbrand.run syntax h))

let theorem1_bound_holds ~universe ~probes schedules =
  List.for_all
    (fun h ->
      List.for_all (fun sys -> Exec.correct_schedule sys ~probes h) universe)
    schedules
