type t = {
  accesses : Names.var array array;
  kinds : Op.t array array;
}

let make accesses =
  if Array.length accesses = 0 then invalid_arg "Syntax.make: empty system";
  {
    accesses = Array.map Array.copy accesses;
    kinds = Array.map (fun tx -> Array.make (Array.length tx) Op.Update) accesses;
  }

let make_typed steps =
  if Array.length steps = 0 then invalid_arg "Syntax.make_typed: empty system";
  {
    accesses = Array.map (Array.map snd) steps;
    kinds = Array.map (Array.map fst) steps;
  }

let of_lists lists =
  make (Array.of_list (List.map Array.of_list lists))

let of_lists_typed lists =
  make_typed (Array.of_list (List.map Array.of_list lists))

let format s = Array.map Array.length s.accesses

let n_transactions s = Array.length s.accesses

let n_steps s =
  Array.fold_left (fun acc tx -> acc + Array.length tx) 0 s.accesses

let length s i =
  if i < 0 || i >= n_transactions s then invalid_arg "Syntax.length";
  Array.length s.accesses.(i)

let var s (id : Names.step_id) =
  if
    id.tx < 0
    || id.tx >= n_transactions s
    || id.idx < 0
    || id.idx >= Array.length s.accesses.(id.tx)
  then invalid_arg "Syntax.var: step out of range";
  s.accesses.(id.tx).(id.idx)

let kind s (id : Names.step_id) =
  if
    id.tx < 0
    || id.tx >= n_transactions s
    || id.idx < 0
    || id.idx >= Array.length s.kinds.(id.tx)
  then invalid_arg "Syntax.kind: step out of range";
  s.kinds.(id.tx).(id.idx)

let typed s =
  Array.exists (fun tx -> Array.exists (fun k -> k <> Op.Update) tx) s.kinds

let vars s =
  Array.fold_left
    (fun acc tx -> Array.fold_left (fun acc v -> Names.Vset.add v acc) acc tx)
    Names.Vset.empty s.accesses
  |> Names.Vset.elements

let updates s i =
  if i < 0 || i >= n_transactions s then invalid_arg "Syntax.updates";
  let acc = ref Names.Vset.empty in
  Array.iteri
    (fun j v ->
      if Op.writes s.kinds.(i).(j) then acc := Names.Vset.add v !acc)
    s.accesses.(i);
  Names.Vset.elements !acc

let steps s =
  let acc = ref [] in
  for i = n_transactions s - 1 downto 0 do
    for j = Array.length s.accesses.(i) - 1 downto 0 do
      acc := Names.step i j :: !acc
    done
  done;
  !acc

let steps_on s v =
  List.filter (fun id -> String.equal (var s id) v) (steps s)

let transactions_on s v =
  steps_on s v
  |> List.map (fun (id : Names.step_id) -> id.tx)
  |> List.sort_uniq Int.compare

let rename f s = { s with accesses = Array.map (Array.map f) s.accesses }

let equal a b = a.accesses = b.accesses && a.kinds = b.kinds

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i tx ->
      Array.iteri
        (fun j v ->
          if i > 0 || j > 0 then Format.fprintf ppf "@ ";
          match s.kinds.(i).(j) with
          | Op.Update ->
            Format.fprintf ppf "%a: %s" Names.pp_step (Names.step i j) v
          | k ->
            Format.fprintf ppf "%a: %c(%s)" Names.pp_step (Names.step i j)
              (Op.to_char k) v)
        tx)
    s.accesses;
  Format.fprintf ppf "@]"
