type event =
  | Act of Rw_model.step
  | Commit of int
  | Abort of int

type history = event array

let of_rw ?(aborts = []) (h : Rw_model.history) =
  let n = Rw_model.n_of_history h in
  let terminals =
    List.init n (fun i -> if List.mem i aborts then Abort i else Commit i)
  in
  Array.append (Array.map (fun s -> Act s) h) (Array.of_list terminals)

let well_formed n h =
  let terminal_at = Array.make n (-1) in
  let last_action = Array.make n (-1) in
  let ok = ref true in
  Array.iteri
    (fun p e ->
      match e with
      | Act s -> last_action.(s.Rw_model.id.Names.tx) <- p
      | Commit i | Abort i ->
        if i < 0 || i >= n || terminal_at.(i) >= 0 then ok := false
        else terminal_at.(i) <- p)
    h;
  !ok
  && Array.for_all2
       (fun t a -> t >= 0 && t > a)
       terminal_at last_action

let terminal_pos n h =
  let pos = Array.make n (-1) in
  Array.iteri
    (fun p e ->
      match e with Commit i | Abort i -> pos.(i) <- p | Act _ -> ())
    h;
  pos

let committed n h =
  let c = Array.make n false in
  Array.iter (fun e -> match e with Commit i -> c.(i) <- true | _ -> ()) h;
  c

(* reads-from over the event sequence: for each read, the writing
   transaction (if different) and the position of the read. *)
let cross_reads h =
  let last_writer : (Names.var, int) Hashtbl.t = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iteri
    (fun p e ->
      match e with
      | Act { Rw_model.id; action } ->
        let v = action.Rw_model.var in
        if Op.observes action.Rw_model.op then (
          match Hashtbl.find_opt last_writer v with
          | Some i when i <> id.Names.tx -> acc := (i, id.Names.tx, p) :: !acc
          | Some _ | None -> ());
        if Op.writes action.Rw_model.op then
          Hashtbl.replace last_writer v id.Names.tx
      | Commit _ | Abort _ -> ())
    h;
  List.rev !acc

let recoverable n h =
  let term = terminal_pos n h in
  let comm = committed n h in
  List.for_all
    (fun (writer, reader, _) ->
      (not comm.(reader))
      || (comm.(writer) && term.(writer) < term.(reader)))
    (cross_reads h)

let avoids_cascading_aborts n h =
  let term = terminal_pos n h in
  let comm = committed n h in
  List.for_all
    (fun (writer, reader, p) ->
      ignore reader;
      comm.(writer) && term.(writer) < p)
    (cross_reads h)

let strict n h =
  ignore n;
  (* position of the pending (unterminated) last writer per variable *)
  let last_writer : (Names.var, int) Hashtbl.t = Hashtbl.create 8 in
  let terminated = Hashtbl.create 8 in
  let ok = ref true in
  Array.iter
    (fun e ->
      match e with
      | Commit i | Abort i -> Hashtbl.replace terminated i ()
      | Act { Rw_model.id; action } ->
        let v = Rw_model.var_of_action_exposed action in
        (match Hashtbl.find_opt last_writer v with
        | Some i when i <> id.Names.tx && not (Hashtbl.mem terminated i) ->
          ok := false
        | Some _ | None -> ());
        if Rw_model.is_write action then
          Hashtbl.replace last_writer v id.Names.tx)
    h;
  !ok

let classify n h =
  if strict n h then "ST"
  else if avoids_cascading_aborts n h then "ACA"
  else if recoverable n h then "RC"
  else "-"

let pp ppf h =
  Format.fprintf ppf "(";
  Array.iteri
    (fun p e ->
      if p > 0 then Format.fprintf ppf ", ";
      match e with
      | Act s ->
        let letter =
          String.make 1
            (Char.uppercase_ascii (Op.to_char s.Rw_model.action.Rw_model.op))
        in
        Format.fprintf ppf "%s%d(%s)" letter
          (s.Rw_model.id.Names.tx + 1)
          (Rw_model.var_of_action_exposed s.Rw_model.action)
      | Commit i -> Format.fprintf ppf "C%d" (i + 1)
      | Abort i -> Format.fprintf ppf "A%d" (i + 1))
    h;
  Format.fprintf ppf ")"
