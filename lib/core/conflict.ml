let graph_of_prefix syntax h k =
  let n = Syntax.n_transactions syntax in
  let g = Digraph.create n in
  (* tbl v = (transaction, op) pairs having already accessed v, in order *)
  let tbl : (Names.var, (int * Op.t) list) Hashtbl.t = Hashtbl.create 16 in
  for pos = 0 to k - 1 do
    let id = h.(pos) in
    let v = Syntax.var syntax id in
    let op = Syntax.kind syntax id in
    let earlier = try Hashtbl.find tbl v with Not_found -> [] in
    List.iter
      (fun (tx, op') ->
        if tx <> id.Names.tx && Commute.conflicts op' op then
          Digraph.add_edge g tx id.Names.tx)
      earlier;
    Hashtbl.replace tbl v ((id.Names.tx, op) :: earlier)
  done;
  g

let graph syntax h = graph_of_prefix syntax h (Array.length h)

let serializable syntax h = not (Digraph.has_cycle (graph syntax h))

let serialization_orders syntax h = Digraph.topological_sort (graph syntax h)

let prefix_serializable syntax h k =
  not (Digraph.has_cycle (graph_of_prefix syntax h k))

let first_cycle syntax h = Digraph.find_cycle (graph syntax h)
