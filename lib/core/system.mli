(** Full transaction systems: syntax + semantics + integrity constraints.

    The semantics interprets each function symbol [f_ij] as an expression
    [φ_ij] over the local variables [t_i1 .. t_ij] ([Expr.Ast.Local 0] to
    [Local (j-1)], 0-based). The integrity constraints [IC] select the
    consistent global states. *)

type ic =
  | Pred of Expr.Ast.t
      (** A boolean expression over global variables. *)
  | Sat of string * (State.t -> bool)
      (** An opaque predicate with a display name, for constraints not
          expressible in the expression language (e.g. Herbrand
          reachability sets). *)
  | Trivial  (** Every state is consistent. *)

type t = private {
  syntax : Syntax.t;
  interp : Expr.Ast.t array array;  (** [interp.(i).(j)] is [φ_ij] *)
  domains : (Names.var * Expr.Value.domain) list;
      (** Domain of every global variable, sorted by name. *)
  ic : ic;
}

val make :
  ?domains:(Names.var * Expr.Value.domain) list ->
  ?ic:ic ->
  Syntax.t ->
  Expr.Ast.t array array ->
  t
(** Build and validate a system. Checks: the interpretation array matches
    the format; [φ_ij] mentions only [Local 0 .. Local j] (0-based step
    [j]) and no global variables. Unlisted variables default to the
    domain [Ints]; [ic] defaults to [Trivial]. Raises
    [Invalid_argument] with a diagnostic on violation. *)

val format : t -> int array
val n_transactions : t -> int

val phi : t -> Names.step_id -> Expr.Ast.t
(** The interpretation of a step's function symbol. *)

val domain : t -> Names.var -> Expr.Value.domain

val consistent : t -> State.t -> bool
(** Whether a global state satisfies the integrity constraints. *)

val step_kind : t -> Names.step_id -> Op.t
(** Syntactic classification of §2, extended to the semantic
    operations: a step whose [φ] is the identity on its own read
    ([t_ij]) is an [Op.Read]; [t_ij ± c] is [Op.Incr]/[Op.Decr];
    [max t_ij c] (as the [If]/[Lt] pattern {!canonical_phi} emits) is
    [Op.Max]; a [φ] that ignores [t_ij] is an [Op.Write]; anything else
    is [Op.Update]. A blind or semantic classification is {e demoted}
    to [Op.Update] when a later [φ] of the same transaction uses the
    step's local — the read would be observable, so commuting the step
    would not be sound. *)

val canonical_phi : tx:int -> idx:int -> Op.t -> Expr.Ast.t
(** The canonical interpretation of a declared operation — the concrete
    semantics {!of_syntax} assigns. [classify ∘ canonical_phi] is the
    identity except for [Op.Enqueue], whose bag-insert is modelled as
    adding a per-step element token and reads back as [Op.Incr]. *)

val of_syntax :
  ?domains:(Names.var * Expr.Value.domain) list -> ?ic:ic -> Syntax.t -> t
(** Interpret a typed syntax with {!canonical_phi} per step — the
    bridge from the declared operation model to the executable machine
    ([Exec], [Sched.Assertional]) and the concrete half of the
    semantic-scheduler oracle. *)

val pp : Format.formatter -> t -> unit
(** Listing with interpretations: [Tij: x <- (t1 + 1)]. *)

val pp_ic : Format.formatter -> ic -> unit
