(** The paper's worked examples, as ready-made systems.

    These are referenced throughout the tests, the example programs and
    the benchmark harness (experiment ids E1, F1–F5 of DESIGN.md). *)

val banking : System.t
(** The Section 2 example: [T1] transfers $100 from [A] to [B] when [A]
    has enough funds and [B] is below $100; [T2] withdraws $50 from [B]
    (if covered) and increments the counter [C]; [T3] audits [S ← A+B]
    and resets [C]. Integrity constraints:
    [A ≥ 0 ∧ B ≥ 0 ∧ S = A + B + 50·C] (the paper's linear invariant —
    its text garbles the sign; this is the variant the example's own
    states satisfy). Format [(3, 2, 4)]. *)

val banking_initial : State.t
(** The paper's initial state [(A,B,S,C) = (150, 50, 200, 0)]. *)

val fig1 : System.t
(** Figure 1: [T11: x ← x+1; T12: x ← 2x] and [T21: x ← x+1], trivial
    IC. The history [(T11, T21, T12)] is not serializable but reaches
    the same state as the serial history [(T21, T11, T12)]. *)

val fig1_history : Schedule.t
(** [(T11, T21, T12)]. *)

val fig2_transaction : Names.var list
(** Figure 2's single transaction's access list: [x; y; x; z]. *)

val fig3_pair : Syntax.t
(** Two transactions suited to the Figure 3 progress-space picture: both
    access [x] then [y] (each twice), creating the two forbidden blocks
    [Bx], [By] and a deadlock region under 2PL. *)

val two_counters : System.t
(** A small semantic playground: [T1] increments [x] twice; [T2] adds
    [x] into [y]. Used by tests for WSR/SR separations. *)

val hot_account : Syntax.t
(** One hot bank account, typed: [T1] credits [A] twice, [T2] debits it
    twice, [T3] credits it once — five [Op.Incr]/[Op.Decr] steps on a
    single variable. Under the rw reading this is {!hot_spot}[ 3 _];
    under {!Commute} every pair commutes and the semantic scheduler
    grants any arrival order. *)

val hot_account_system : System.t
(** {!hot_account} with concrete amounts (credits $100/$100/$50, debits
    $30 each) and the integrity constraint [A ≥ 0] — the executable
    side for [Exec] and [Sched.Assertional]. From
    {!hot_account_initial} ([A = 100]) every interleaving keeps
    [A ≥ 0], so the assertional scheduler, like the semantic one,
    grants every arrival order (DESIGN.md compares the two). *)

val hot_account_initial : State.t
(** [A = 100]. *)

val indep : Syntax.t
(** Three transactions on pairwise disjoint variables — everything is
    serializable; the other extreme from a single hot spot. *)

val hot_spot : int -> int -> Syntax.t
(** [hot_spot n m]: [n] transactions of [m] steps, all on one variable
    — the maximally conflicting syntax. *)
