open Expr.Ast

let banking =
  let syntax =
    Syntax.of_lists [ [ "A"; "B"; "A" ]; [ "B"; "C" ]; [ "A"; "B"; "S"; "C" ] ]
  in
  let transfer_guard = And (ge (Local 0) (int 100), Lt (Local 1, int 100)) in
  let withdraw_guard = ge (Local 0) (int 50) in
  let interp =
    [|
      (* T1: transfer $100 from A to B if A >= 100 and B < 100 *)
      [|
        Local 0;                                        (* phi11: read A *)
        If (transfer_guard, Add (Local 1, int 100), Local 1);  (* phi12: B *)
        If (transfer_guard, Sub (Local 0, int 100), Local 2);  (* phi13: A *)
      |];
      (* T2: withdraw $50 from B if covered; count it in C *)
      [|
        If (withdraw_guard, Sub (Local 0, int 50), Local 0);   (* phi21: B *)
        If (withdraw_guard, Add (Local 1, int 1), Local 1);    (* phi22: C *)
      |];
      (* T3: audit S <- A + B; reset C *)
      [|
        Local 0;                                        (* phi31: read A *)
        Local 1;                                        (* phi32: read B *)
        Add (Local 0, Local 1);                         (* phi33: S *)
        int 0;                                          (* phi34: C *)
      |];
    |]
  in
  let ic =
    System.Pred
      (And
         ( And (ge (Global "A") (int 0), ge (Global "B") (int 0)),
           Eq
             ( Global "S",
               Add (Add (Global "A", Global "B"), Mul (int 50, Global "C")) )
         ))
  in
  System.make ~ic syntax interp

let banking_initial =
  State.of_ints [ ("A", 150); ("B", 50); ("S", 200); ("C", 0) ]

let fig1 =
  let syntax = Syntax.of_lists [ [ "x"; "x" ]; [ "x" ] ] in
  let interp =
    [|
      [| Add (Local 0, int 1); Mul (int 2, Local 1) |];
      [| Add (Local 0, int 1) |];
    |]
  in
  System.make syntax interp

let fig1_history =
  [| Names.step 0 0; Names.step 1 0; Names.step 0 1 |]

let fig2_transaction = [ "x"; "y"; "x"; "z" ]

let fig3_pair = Syntax.of_lists [ [ "x"; "y" ]; [ "x"; "y" ] ]

let two_counters =
  let syntax = Syntax.of_lists [ [ "x"; "x" ]; [ "x"; "y" ] ] in
  let interp =
    [|
      [| Add (Local 0, int 1); Add (Local 1, int 1) |];
      [| Local 0; Add (Local 0, Local 1) |];
    |]
  in
  System.make syntax interp

let hot_account =
  Syntax.make_typed
    [|
      [| (Op.Incr, "A"); (Op.Incr, "A") |];
      [| (Op.Decr, "A"); (Op.Decr, "A") |];
      [| (Op.Incr, "A") |];
    |]

let hot_account_system =
  let interp =
    [|
      (* T1: two credits of $100 *)
      [| Add (Local 0, int 100); Add (Local 1, int 100) |];
      (* T2: two debits of $30 *)
      [| Sub (Local 0, int 30); Sub (Local 1, int 30) |];
      (* T3: one credit of $50 *)
      [| Add (Local 0, int 50) |];
    |]
  in
  System.make ~ic:(System.Pred (ge (Global "A") (int 0))) hot_account interp

let hot_account_initial = State.of_ints [ ("A", 100) ]

let indep =
  Syntax.of_lists [ [ "a"; "a" ]; [ "b"; "b" ]; [ "c"; "c" ] ]

let hot_spot n m =
  if n <= 0 || m <= 0 then invalid_arg "Examples.hot_spot";
  Syntax.make (Array.make n (Array.make m "x"))
