(** The read/write refinement of the step model (the Section 6
    extension).

    The paper's steps are atomic read-modify-writes, which makes
    final-state, view and conflict serializability coincide. Real
    systems distinguish pure reads from blind writes; this module
    implements the classical refined model so the library can exhibit
    the separations [CSR ⊊ VSR ⊊ FSR] and benchmark the tests against
    each other (experiment X1).

    A history is a sequence of actions on variables; each transaction's
    actions are totally ordered within it. An action is an {!Op.t}
    paired with the variable it touches — the same operation type the
    rest of the system uses. The classical fragment is [Op.Read] /
    [Op.Write] (use {!read} and {!write}); {!conflict_serializable}
    draws its edges from {!Commute.conflicts}, which coincides with the
    textbook "at least one writes" rule on that fragment and extends it
    to the semantic operations. *)

type action = { op : Op.t; var : Names.var }

val act : Op.t -> Names.var -> action
val read : Names.var -> action
(** [{ op = Op.Read; var }]. *)

val write : Names.var -> action
(** [{ op = Op.Write; var }] — a blind write. *)

type step = { id : Names.step_id; action : action }

type history = step array

val make : (action list) list -> history
(** [make per_tx] flattens per-transaction action lists into a serial
    history (transaction order); use {!interleave} for general ones. *)

val interleave : (action list) list -> int array -> history
(** [interleave per_tx order] builds the history whose [k]-th step comes
    from transaction [order.(k)] (the j-th occurrence takes its j-th
    action). Raises [Invalid_argument] if [order] has the wrong
    occurrence counts. *)

val var_of : action -> Names.var
val is_write : action -> bool
(** Whether the action installs a value — [Op.writes]. *)

val conflict_serializable : int -> history -> bool
(** [conflict_serializable n h]: conflict graph over [n] transactions —
    edges between same-variable pairs that do not commute per
    {!Commute.conflicts} (on read/write histories: the classical r-w,
    w-r and w-w pairs) — acyclic? *)

val view_equivalent : int -> history -> history -> bool
(** Same reads-from relation (reads-from-initial included) and same
    final writer per variable. *)

val view_serializable : int -> history -> bool
(** Brute force over the [n!] serial orders. Exponential (the problem is
    NP-complete); small [n] only. *)

val view_serializable_polygraph : int -> history -> bool
(** The classical polygraph decision procedure [Papadimitriou 78]: the
    history is augmented with an initial writer [T_0] and a final reader
    [T_f]; fixed arcs follow the reads-from relation, and for every
    reads-from pair [(T_i → T_j, x)] and every other writer [T_k] of [x]
    a {e choice} forces [T_k → T_i] or [T_j → T_k]. The history is
    view-serializable iff some choice assignment leaves the graph
    acyclic (backtracking with early cycle pruning; still exponential in
    the worst case — the problem is NP-complete — but far better than
    [n!] in practice). Agrees with {!view_serializable} (tested). *)

val final_state_equivalent : int -> history -> history -> bool
(** Equal final symbolic states when each write [w_ij(x)] writes an
    uninterpreted term in the values the transaction has read so far
    (dead computations erased: only the terms reachable from the final
    variable values matter). *)

val final_state_serializable : int -> history -> bool
(** Brute force over serial orders. *)

val csr_implies_vsr_witness : unit -> int * history
(** A classical witness history that is view-serializable but not
    conflict-serializable (needs blind writes). Returns
    [(n_transactions, history)]. *)

val vsr_not_fsr_witness : unit -> int * history
(** A history that is final-state-serializable but not
    view-serializable (a dead read). *)

val var_of_action_exposed : action -> Names.var
(** The variable an action touches. *)

val n_of_history : history -> int
(** Smallest transaction count covering every step of the history. *)

val pp : Format.formatter -> history -> unit
