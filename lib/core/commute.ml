let commutes (a : Op.t) (b : Op.t) =
  match (a, b) with
  | Op.Read, Op.Read -> true
  | (Op.Incr | Op.Decr), (Op.Incr | Op.Decr) -> true
  | Op.Enqueue, Op.Enqueue -> true
  | Op.Max, Op.Max -> true
  | _, _ -> false

let conflicts a b = not (commutes a b)

let rw_conflicts a b = Op.writes a || Op.writes b
