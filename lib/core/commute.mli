(** The canonical commutativity table over {!Op.t}.

    Two operations on the {e same} variable commute when executing them
    in either order yields the same variable state {e and} neither
    observes a value the other changes — the operation-level criterion
    of "Limits of Commutativity on Abstract Data Types" specialised to
    our operation vocabulary. Every conflict edge in the system
    ({!Conflict}, [Sched.Semantic]) is drawn from this one table.

    The table is symmetric and deliberately conservative:

    - [Read]/[Read] commutes (neither installs anything);
    - [Incr]/[Decr] commute among themselves ([x ± c] compose in any
      order);
    - [Enqueue]/[Enqueue] commutes (bag insertion);
    - [Max]/[Max] commutes (monotone idempotent fold);
    - {e every other pair conflicts} — in particular any pair involving
      [Write] or [Update], and any cross-group semantic pair
      ([Incr]/[Max], [Enqueue]/[Incr], ...). Unknown is treated exactly
      like the read/write relation: conflict.

    Restricted to the classical fragment [{Read; Write; Update}] the
    relation coincides with {!rw_conflicts}, the textbook "at least one
    writes" rule — pinned by a property test. *)

val commutes : Op.t -> Op.t -> bool
(** Symmetric: [commutes a b = commutes b a]. *)

val conflicts : Op.t -> Op.t -> bool
(** [not (commutes a b)] — the conflict relation schedulers filter
    edges through. *)

val rw_conflicts : Op.t -> Op.t -> bool
(** The classical read/write conflict relation ("at least one step
    writes"), kept as the reference point: on operations with
    [not (Op.semantic op)] it equals {!conflicts}. *)
