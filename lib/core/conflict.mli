(** Conflict (serialization) graphs and the polynomial serializability
    test.

    In the paper's step model every step is an atomic read-modify-write
    of one variable, so any two steps of different transactions on the
    same variable conflict, and the order between them is observable
    under the Herbrand semantics. The {b conflict graph} of a schedule
    has an edge [T_i → T_k] whenever some step of [T_i] precedes a step
    of [T_k] on the same variable {e and the two operations do not
    commute} per {!Commute.conflicts}. On untyped syntax (every step an
    [Op.Update]) nothing commutes and the graph is the classical one;
    typed syntax drops the commuting pairs — Read/Read, counter bumps,
    bag inserts, monotone maxes — exactly the orders the extended
    Herbrand semantics cannot observe.

    Because the pure RMW model has no blind writes (every write reads)
    and no dead writes (every value written either survives or is read
    by the next step on that variable), final-state, view and conflict
    serializability all coincide there; acyclicity of the conflict graph
    decides [SR(T)] in polynomial time. This equivalence is
    cross-validated against the brute-force Herbrand test in the test
    suite and benchmarked in bench P4. *)

val graph : Syntax.t -> Schedule.t -> Digraph.t
(** Conflict graph over transaction indices. *)

val serializable : Syntax.t -> Schedule.t -> bool
(** [true] iff the conflict graph is acyclic. *)

val serialization_orders : Syntax.t -> Schedule.t -> int array option
(** A topological order of the conflict graph — an equivalent serial
    execution order — or [None] if cyclic. *)

val prefix_serializable : Syntax.t -> Schedule.t -> int -> bool
(** Whether the first [k] steps form a conflict-serializable partial
    schedule (used by the SGT scheduler: [CSR] is prefix-closed). *)

val first_cycle : Syntax.t -> Schedule.t -> int list option
(** The transactions of some cycle in the conflict graph, if any. *)
