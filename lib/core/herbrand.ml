type group = Counter | Bag | Maxg

type term =
  | Init of Names.var
  | App of Names.step_id * term list
  | Sem of group * Names.step_id list * term

let group_of_op : Op.t -> group option = function
  | Op.Incr | Op.Decr -> Some Counter
  | Op.Enqueue -> Some Bag
  | Op.Max -> Some Maxg
  | Op.Read | Op.Write | Op.Update -> None

let rec equal_term a b =
  match a, b with
  | Init v, Init w -> String.equal v w
  | App (s, args), App (s', args') ->
    Names.equal_step s s' && List.equal equal_term args args'
  | Sem (g, ids, base), Sem (g', ids', base') ->
    g = g' && List.equal Names.equal_step ids ids' && equal_term base base'
  | (Init _ | App _ | Sem _), _ -> false

let rec compare_term a b =
  match a, b with
  | Init v, Init w -> String.compare v w
  | Init _, (App _ | Sem _) -> -1
  | App _, Init _ -> 1
  | App _, Sem _ -> -1
  | Sem _, (Init _ | App _) -> 1
  | App (s, args), App (s', args') -> (
    match Names.compare_step s s' with
    | 0 -> List.compare compare_term args args'
    | c -> c)
  | Sem (g, ids, base), Sem (g', ids', base') -> (
    match compare g g' with
    | 0 -> (
      match List.compare Names.compare_step ids ids' with
      | 0 -> compare_term base base'
      | c -> c)
    | c -> c)

let group_name = function Counter -> "ctr" | Bag -> "bag" | Maxg -> "max"

let rec pp_term ppf = function
  | Init v -> Format.fprintf ppf "%s0" v
  | App (s, args) ->
    Format.fprintf ppf "f%s(%a)"
      (let open Names in
       Printf.sprintf "%d%d" (s.tx + 1) (s.idx + 1))
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         pp_term)
      args
  | Sem (g, ids, base) ->
    Format.fprintf ppf "%s{%a}(%a)" (group_name g)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         (fun ppf (s : Names.step_id) ->
           Format.fprintf ppf "%d%d" (s.tx + 1) (s.idx + 1)))
      ids pp_term base

let term_to_string t = Format.asprintf "%a" pp_term t

let rec term_size = function
  | Init _ -> 1
  | App (_, args) -> List.fold_left (fun n t -> n + term_size t) 1 args
  | Sem (_, ids, base) -> List.length ids + 1 + term_size base

type hstate = term Names.Vmap.t

let initial syntax =
  List.fold_left
    (fun m v -> Names.Vmap.add v (Init v) m)
    Names.Vmap.empty (Syntax.vars syntax)

(* Insert a step id into a Sem layer, keeping the multiset sorted — the
   normal form that quotients exactly by the commutations {!Commute}
   declares within one group. *)
let sem_apply grp id t =
  match t with
  | Sem (g, ids, base) when g = grp ->
    let rec insert = function
      | [] -> [ id ]
      | x :: rest as l ->
        if Names.compare_step id x <= 0 then id :: l else x :: insert rest
    in
    Sem (grp, insert ids, base)
  | _ -> Sem (grp, [ id ], t)

let exec_step syntax (g, locals) (id : Names.step_id) =
  let x = Syntax.var syntax id in
  let op = Syntax.kind syntax id in
  let read = Names.Vmap.find x g in
  let locals = Array.copy locals in
  locals.(id.tx) <- Array.copy locals.(id.tx);
  (* A blind or semantic op's read is unobservable (see {!Op.observes});
     its local is a schedule-independent private token, so a later
     Update's argument list stays invariant under the commutations the
     typed semantics grants. *)
  locals.(id.tx).(id.idx) <-
    Some (if Op.observes op then read else App (id, []));
  let args upto =
    List.init upto (fun k ->
        match locals.(id.tx).(k) with
        | Some t -> t
        | None -> invalid_arg "Herbrand.exec_step: illegal schedule")
  in
  let g =
    match op with
    | Op.Read -> g
    | Op.Update -> Names.Vmap.add x (App (id, args (id.idx + 1))) g
    | Op.Write -> Names.Vmap.add x (App (id, args id.idx)) g
    | Op.Incr | Op.Decr | Op.Enqueue | Op.Max ->
      let grp = Option.get (group_of_op op) in
      Names.Vmap.add x (sem_apply grp id read) g
  in
  (g, locals)

let run syntax h =
  let fmt = Syntax.format syntax in
  let locals = Array.map (fun m -> Array.make m None) fmt in
  let st = (initial syntax, locals) in
  fst (Array.fold_left (exec_step syntax) st h)

let equal_state = Names.Vmap.equal equal_term

let serialization_witness syntax h =
  let fmt = Syntax.format syntax in
  let n = Array.length fmt in
  let target = run syntax h in
  let found = ref None in
  (try
     Combin.Perm.iter n (fun order ->
         let serial = Schedule.serial fmt order in
         if equal_state (run syntax serial) target then begin
           found := Some (Array.copy order);
           raise Exit
         end)
   with Exit -> ());
  !found

let serializable syntax h = serialization_witness syntax h <> None

let equivalent syntax h h' = equal_state (run syntax h) (run syntax h')

let pp_state ppf g =
  Format.fprintf ppf "{";
  let first = ref true in
  Names.Vmap.iter
    (fun v t ->
      if not !first then Format.fprintf ppf ", ";
      first := false;
      Format.fprintf ppf "%s=%a" v pp_term t)
    g;
  Format.fprintf ppf "}"
