type ic =
  | Pred of Expr.Ast.t
  | Sat of string * (State.t -> bool)
  | Trivial

type t = {
  syntax : Syntax.t;
  interp : Expr.Ast.t array array;
  domains : (Names.var * Expr.Value.domain) list;
  ic : ic;
}

let validate syntax interp =
  let fmt = Syntax.format syntax in
  if Array.length interp <> Array.length fmt then
    invalid_arg "System.make: interpretation/format transaction count mismatch";
  Array.iteri
    (fun i phis ->
      if Array.length phis <> fmt.(i) then
        invalid_arg
          (Printf.sprintf "System.make: transaction %d has %d steps but %d interpretations"
             (i + 1) fmt.(i) (Array.length phis));
      Array.iteri
        (fun j phi ->
          if Expr.Ast.max_local phi > j then
            invalid_arg
              (Printf.sprintf
                 "System.make: phi_%d%d uses a local variable not yet declared"
                 (i + 1) (j + 1));
          if Expr.Ast.globals_used phi <> [] then
            invalid_arg
              (Printf.sprintf
                 "System.make: phi_%d%d mentions a global variable directly"
                 (i + 1) (j + 1)))
        phis)
    interp

let make ?(domains = []) ?(ic = Trivial) syntax interp =
  validate syntax interp;
  let all_domains =
    List.map
      (fun v ->
        match List.assoc_opt v domains with
        | Some d -> (v, d)
        | None -> (v, Expr.Value.Ints))
      (Syntax.vars syntax)
  in
  { syntax; interp = Array.map Array.copy interp; domains = all_domains; ic }

let format t = Syntax.format t.syntax

let n_transactions t = Syntax.n_transactions t.syntax

let phi t (id : Names.step_id) =
  if
    id.tx < 0
    || id.tx >= Array.length t.interp
    || id.idx < 0
    || id.idx >= Array.length t.interp.(id.tx)
  then invalid_arg "System.phi: step out of range";
  t.interp.(id.tx).(id.idx)

let domain t v =
  match List.assoc_opt v t.domains with
  | Some d -> d
  | None -> invalid_arg ("System.domain: unknown variable " ^ v)

let consistent t g =
  match t.ic with
  | Trivial -> true
  | Sat (_, p) -> p g
  | Pred e ->
    Expr.Value.bool
      (Expr.Ast.eval
         ~locals:(fun _ -> raise (Expr.Ast.Type_error "IC uses a local"))
         ~globals:(fun v -> State.get g v)
         e)

(* Syntactic classification of a step interpretation. [φ] may only
   mention locals (validated), so [locals_used c = []] means closed. *)
let classify j (e : Expr.Ast.t) =
  if Expr.Ast.is_identity_of j e then Op.Read
  else
    match e with
    | Add (Local k, c) when k = j && Expr.Ast.locals_used c = [] -> Op.Incr
    | Add (c, Local k) when k = j && Expr.Ast.locals_used c = [] -> Op.Incr
    | Sub (Local k, c) when k = j && Expr.Ast.locals_used c = [] -> Op.Decr
    | If (Lt (Local k, c), c', Local k')
      when k = j && k' = j
           && Expr.Ast.locals_used c = []
           && Expr.Ast.equal c c' ->
      Op.Max
    | e ->
      if Expr.Ast.depends_on_local j e then Op.Update else Op.Write

let step_kind t id =
  let e = phi t id in
  let j = id.Names.idx in
  let base = classify j e in
  if Op.observes base then base
  else begin
    (* A blind or semantic classification is only sound while the value
       the step read stays unobservable: if any later φ of the same
       transaction uses this local, the op's read leaks and commuting it
       past other writers would change that observation — demote. *)
    let phis = t.interp.(id.Names.tx) in
    let leaked = ref false in
    for k = j + 1 to Array.length phis - 1 do
      if Expr.Ast.depends_on_local j phis.(k) then leaked := true
    done;
    if !leaked then Op.Update else base
  end

(* The canonical interpretation of a declared operation: the simplest φ
   that [classify] maps back to the op ([Enqueue] is the exception — its
   bag-insert is modelled as adding a per-step element token, which
   reads back as [Incr]; both sit in a commutative monoid, so the
   concrete oracle still exercises exactly the commutativity the
   scheduler assumed). Constants differ per step so distinct blind
   writes stay distinguishable. *)
let canonical_phi ~tx ~idx (op : Op.t) : Expr.Ast.t =
  let open Expr.Ast in
  match op with
  | Op.Read -> Local idx
  | Op.Update -> Add (Mul (Local idx, int 2), int ((tx + 1) * 10 + idx + 1))
  | Op.Write -> int ((tx + 1) * 1000 + idx + 1)
  | Op.Incr -> Add (Local idx, int 1)
  | Op.Decr -> Sub (Local idx, int 1)
  | Op.Enqueue -> Add (Local idx, int ((tx + 1) * 100 + idx + 1))
  | Op.Max ->
    let c = int ((tx + 1) * 10 + idx) in
    If (Lt (Local idx, c), c, Local idx)

let of_syntax ?domains ?ic syntax =
  let interp =
    Array.init (Syntax.n_transactions syntax) (fun tx ->
        Array.init (Syntax.length syntax tx) (fun idx ->
            canonical_phi ~tx ~idx (Syntax.kind syntax (Names.step tx idx))))
  in
  make ?domains ?ic syntax interp

let pp_ic ppf = function
  | Trivial -> Format.pp_print_string ppf "true"
  | Sat (name, _) -> Format.fprintf ppf "<%s>" name
  | Pred e -> Expr.Ast.pp ppf e

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i phis ->
      Array.iteri
        (fun j phi ->
          if i > 0 || j > 0 then Format.fprintf ppf "@ ";
          Format.fprintf ppf "%a: %s <- %a" Names.pp_step (Names.step i j)
            (Syntax.var t.syntax (Names.step i j))
            Expr.Ast.pp phi)
        phis)
    t.interp;
  Format.fprintf ppf "@ IC: %a@]" pp_ic t.ic
