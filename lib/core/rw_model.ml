type action = { op : Op.t; var : Names.var }

let act op var = { op; var }
let read v = { op = Op.Read; var = v }
let write v = { op = Op.Write; var = v }

type step = { id : Names.step_id; action : action }

type history = step array

let make per_tx =
  Array.of_list
    (List.concat
       (List.mapi
          (fun i actions ->
            List.mapi (fun j a -> { id = Names.step i j; action = a }) actions)
          per_tx))

let interleave per_tx order =
  let per_tx = Array.of_list (List.map Array.of_list per_tx) in
  let n = Array.length per_tx in
  let next = Array.make n 0 in
  let h =
    Array.map
      (fun i ->
        if i < 0 || i >= n || next.(i) >= Array.length per_tx.(i) then
          invalid_arg "Rw_model.interleave: bad occurrence counts";
        let j = next.(i) in
        next.(i) <- j + 1;
        { id = Names.step i j; action = per_tx.(i).(j) })
      order
  in
  if Array.exists2 (fun k tx -> k <> Array.length tx) next per_tx then
    invalid_arg "Rw_model.interleave: incomplete interleaving";
  h

let var_of a = a.var

let is_write a = Op.writes a.op

let n_of_history h =
  Array.fold_left (fun acc s -> max acc (s.id.Names.tx + 1)) 0 h

let conflict_serializable n h =
  let n = max n (n_of_history h) in
  let g = Digraph.create n in
  let len = Array.length h in
  for p = 0 to len - 1 do
    for q = p + 1 to len - 1 do
      let a = h.(p) and b = h.(q) in
      if
        a.id.Names.tx <> b.id.Names.tx
        && String.equal a.action.var b.action.var
        && Commute.conflicts a.action.op b.action.op
      then Digraph.add_edge g a.id.Names.tx b.id.Names.tx
    done
  done;
  not (Digraph.has_cycle g)

(* The reads-from relation: for every observing read, the id of the
   write it reads (None = the initial value); plus the final writer of
   every variable. An [Update] both reads (before) and writes. *)
let view_facts h =
  let last_writer : (Names.var, Names.step_id) Hashtbl.t = Hashtbl.create 8 in
  let reads = ref [] in
  Array.iter
    (fun s ->
      let { op; var = v } = s.action in
      if Op.observes op then
        reads := (s.id, Hashtbl.find_opt last_writer v) :: !reads;
      if Op.writes op then Hashtbl.replace last_writer v s.id)
    h;
  let finals =
    Hashtbl.fold (fun v id acc -> (v, id) :: acc) last_writer []
    |> List.sort compare
  in
  (List.sort compare !reads, finals)

let view_equivalent _n h h' = view_facts h = view_facts h'

let per_tx_actions n h =
  let buckets = Array.make n [] in
  Array.iter
    (fun s -> buckets.(s.id.Names.tx) <- s.action :: buckets.(s.id.Names.tx))
    h;
  Array.map List.rev buckets

let serial_history actions order =
  Array.of_list
    (List.concat_map
       (fun i ->
         List.mapi (fun j a -> { id = Names.step i j; action = a }) actions.(i))
       (Array.to_list order))

let exists_serial_equiv equiv n h =
  let n = max n (n_of_history h) in
  let actions = per_tx_actions n h in
  Combin.Perm.exists n (fun order -> equiv (serial_history actions order) h)

let view_serializable n h = exists_serial_equiv (view_equivalent n) n h

(* The polygraph test. Transactions 0..n-1, node n = the initial writer
   T0, node n+1 = the final reader Tf. *)
let view_serializable_polygraph n h =
  let n = max n (n_of_history h) in
  let t0 = n and tf = n + 1 in
  (* augmented reads-from: every read names its writer (t0 for initial),
     and Tf reads every variable from its final writer *)
  let reads, finals = view_facts h in
  let writer = function Some (id : Names.step_id) -> id.Names.tx | None -> t0 in
  let var_of_read (id : Names.step_id) =
    let s = Array.to_list h |> List.find (fun s -> s.id = id) in
    s.action.var
  in
  (* A read preceded by its own transaction's write of the variable
     reads that write in EVERY serial order. If the history disagrees it
     cannot be view-serializable; if it agrees the pair constrains
     nothing (hence the i <> j filter below). *)
  let own_earlier_write (id : Names.step_id) v =
    Array.exists
      (fun s ->
        s.id.Names.tx = id.Names.tx
        && s.id.Names.idx < id.Names.idx
        && Op.writes s.action.op
        && String.equal s.action.var v)
      h
  in
  let forced_self_violated =
    List.exists
      (fun ((id : Names.step_id), w) ->
        own_earlier_write id (var_of_read id) && writer w <> id.Names.tx)
      reads
  in
  (* Operation-level view equivalence: a cross-transaction read must see
     the writing transaction's LAST write of that variable — in a serial
     order nothing of T_j can follow the write T_i reads. *)
  let last_own_write j v =
    Array.fold_left
      (fun acc s ->
        if
          s.id.Names.tx = j
          && Op.writes s.action.op
          && String.equal s.action.var v
        then Some s.id
        else acc)
      None h
  in
  let reads_nonfinal_write =
    List.exists
      (fun ((id : Names.step_id), w) ->
        match w with
        | Some (wid : Names.step_id) when wid.Names.tx <> id.Names.tx ->
          last_own_write wid.Names.tx (var_of_read id) <> Some wid
        | Some _ | None -> false)
      reads
  in
  let reads_from_vars =
    List.map
      (fun ((id : Names.step_id), w) ->
        (writer w, id.Names.tx, var_of_read id))
      reads
    @ List.map (fun (v, (id : Names.step_id)) -> (id.Names.tx, tf, v)) finals
    |> List.filter (fun (i, j, _) -> i <> j)
  in
  (* writers of each variable, T0 included *)
  let writers v =
    t0
    :: (Array.to_list h
       |> List.filter_map (fun s ->
              if Op.writes s.action.op && String.equal s.action.var v then
                Some s.id.Names.tx
              else None))
    |> List.sort_uniq Int.compare
  in
  let fixed =
    (* T0 precedes and Tf follows everything *)
    List.concat_map (fun i -> [ (t0, i); (i, tf) ]) (List.init n Fun.id)
    @ [ (t0, tf) ]
    @ List.map (fun (i, j, _) -> (i, j)) reads_from_vars
    |> List.sort_uniq compare
  in
  let choices =
    List.concat_map
      (fun (i, j, v) ->
        List.filter_map
          (fun k -> if k <> i && k <> j then Some ((k, i), (j, k)) else None)
          (writers v))
      reads_from_vars
    |> List.sort_uniq compare
  in
  let g = Digraph.create (n + 2) in
  List.iter (fun (u, v) -> Digraph.add_edge g u v) fixed;
  if forced_self_violated || reads_nonfinal_write || Digraph.has_cycle g then
    false
  else begin
    (* backtracking over the choice pairs *)
    let rec solve g = function
      | [] -> true
      | ((a1, b1), (a2, b2)) :: rest ->
        let try_edge a b =
          if Digraph.has_edge g a b then solve g rest
          else begin
            let g' = Digraph.copy g in
            Digraph.add_edge g' a b;
            (not (Digraph.has_cycle g')) && solve g' rest
          end
        in
        try_edge a1 b1 || try_edge a2 b2
    in
    solve g choices
  end

(* Final-state (symbolic) semantics: a write produces an uninterpreted
   term in everything its transaction has read so far; reads of
   transactions that never influence a surviving write are dead. *)
type term =
  | T_init of Names.var
  | T_write of Names.step_id * term list

let final_terms h =
  let n = n_of_history h in
  let read_so_far = Array.make n [] in
  let current : (Names.var, term) Hashtbl.t = Hashtbl.create 8 in
  let value v =
    match Hashtbl.find_opt current v with Some t -> t | None -> T_init v
  in
  Array.iter
    (fun s ->
      let { op; var = v } = s.action in
      if Op.observes op then
        read_so_far.(s.id.Names.tx) <- value v :: read_so_far.(s.id.Names.tx);
      if Op.writes op then
        Hashtbl.replace current v
          (T_write (s.id, List.rev read_so_far.(s.id.Names.tx))))
    h;
  let vars =
    Array.to_list h
    |> List.map (fun s -> s.action.var)
    |> List.sort_uniq String.compare
  in
  List.map (fun v -> (v, value v)) vars

let final_state_equivalent _n h h' = final_terms h = final_terms h'

let final_state_serializable n h =
  exists_serial_equiv (final_state_equivalent n) n h

let csr_implies_vsr_witness () =
  (* R1(x) W2(x) W1(x) W3(x): the conflict graph has the 2-cycle
     T1 <-> T2, yet the history is view-equivalent to T1 T2 T3. *)
  let t1 = [ read "x"; write "x" ] in
  let t2 = [ write "x" ] in
  let t3 = [ write "x" ] in
  (3, interleave [ t1; t2; t3 ] [| 0; 1; 0; 2 |])

let vsr_not_fsr_witness () =
  (* T1 only reads; T2 blindly writes both variables. The history
     W2(x) R1(x) R1(y) W2(y) gives T1 a mixed view that no serial order
     reproduces, but T1's reads are dead, so the final state is serial. *)
  let t1 = [ read "x"; read "y" ] in
  let t2 = [ write "x"; write "y" ] in
  (2, interleave [ t1; t2 ] [| 1; 0; 0; 1 |])

let var_of_action_exposed = var_of

let pp ppf h =
  Format.fprintf ppf "(";
  Array.iteri
    (fun k s ->
      if k > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%c%d(%s)"
        (Char.uppercase_ascii (Op.to_char s.action.op))
        (s.id.Names.tx + 1) s.action.var)
    h;
  Format.fprintf ppf ")"
