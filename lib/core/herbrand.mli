(** Herbrand (symbolic) semantics — Section 4.2.

    Under the Herbrand interpretation, the value written by step [T_ij]
    is the uninterpreted term [f_ij(a_1, ..., a_j)] where [a_k] is the
    term read by the transaction's [k]-th step. Terms capture the entire
    history of every global variable, so two schedules have the same
    execution results under {e every} interpretation iff they have the
    same final Herbrand state (Herbrand's theorem, [Manna 74]).

    A schedule is {b serializable} ([∈ SR(T)]) iff its final Herbrand
    state equals that of some serial schedule.

    {b Typed extension.} On typed syntax the semantics honours the
    declared operations: an [Op.Read] installs nothing; an [Op.Write]'s
    term omits its own (unused) read; and the semantic operations build
    a {e layered commutative normal form} — [Sem (group, ids, base)]
    records the sorted multiset of same-group operations applied on top
    of [base], so two schedules that only reorder commuting operations
    reach {e equal} states, and any observation (a [Read]/[Update], or
    a cross-group op starting a new layer) seals the layer below.
    Equality of normal forms is equivalence under every interpretation
    that respects the declared commutativity — no cancellation or other
    algebraic luck is assumed — which makes {!serializable} the exact
    oracle behind the [semantic] scheduler's differential tests.
    Untyped schedules (all [Op.Update]) reduce to the classical
    semantics above. *)

type group = Counter | Bag | Maxg
(** The commuting groups of {!Commute}: [Incr]/[Decr] bumps, [Enqueue]
    bag inserts, [Max] monotone folds. *)

type term =
  | Init of Names.var  (** the initial value of a variable *)
  | App of Names.step_id * term list
      (** [f_ij] applied to the terms read so far by transaction [i] *)
  | Sem of group * Names.step_id list * term
      (** a sorted multiset of commuting same-group operations applied
          over a base term *)

val group_of_op : Op.t -> group option

val equal_term : term -> term -> bool
val compare_term : term -> term -> int
val pp_term : Format.formatter -> term -> unit
val term_to_string : term -> string
val term_size : term -> int

type hstate = term Names.Vmap.t
(** Symbolic global state: every variable's current term. *)

val initial : Syntax.t -> hstate

val exec_step : Syntax.t -> hstate * term option array array -> Names.step_id ->
  hstate * term option array array
(** Low-level: execute one step symbolically. The second component holds
    the local terms declared so far ([t_ij]). *)

val run : Syntax.t -> Schedule.t -> hstate
(** Final Herbrand state of a schedule (started from {!initial}). The
    schedule must be legal (per-transaction order); this is {e not}
    re-checked here. *)

val equal_state : hstate -> hstate -> bool

val serializable : Syntax.t -> Schedule.t -> bool
(** Membership in [SR(T)]: brute-force comparison against all [n!]
    serial schedules. Exponential by definition; see {!Conflict} for the
    polynomial test (provably equivalent in this step model). *)

val serialization_witness : Syntax.t -> Schedule.t -> int array option
(** [Some order] gives a serial transaction order with the same final
    Herbrand state, if one exists. *)

val equivalent : Syntax.t -> Schedule.t -> Schedule.t -> bool
(** Herbrand equivalence of two schedules of the same system. *)

val pp_state : Format.formatter -> hstate -> unit
