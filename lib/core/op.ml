type t = Read | Write | Update | Incr | Decr | Enqueue | Max

let all = [ Read; Write; Update; Incr; Decr; Enqueue; Max ]

let writes = function
  | Read -> false
  | Write | Update | Incr | Decr | Enqueue | Max -> true

let observes = function
  | Read | Update -> true
  | Write | Incr | Decr | Enqueue | Max -> false

let semantic = function
  | Incr | Decr | Enqueue | Max -> true
  | Read | Write | Update -> false

let to_char = function
  | Read -> 'r'
  | Write -> 'w'
  | Update -> 'u'
  | Incr -> '+'
  | Decr -> '-'
  | Enqueue -> 'q'
  | Max -> 'm'

let of_char = function
  | 'r' -> Some Read
  | 'w' -> Some Write
  | 'u' -> Some Update
  | '+' -> Some Incr
  | '-' -> Some Decr
  | 'q' -> Some Enqueue
  | 'm' -> Some Max
  | _ -> None

let to_string = function
  | Read -> "read"
  | Write -> "write"
  | Update -> "update"
  | Incr -> "incr"
  | Decr -> "decr"
  | Enqueue -> "enqueue"
  | Max -> "max"

let pp ppf op = Format.pp_print_string ppf (to_string op)

let equal (a : t) b = a = b
