(** Syntax of a transaction system (Section 2 of the paper).

    The syntax records, for each step [T_ij], only the name [x_ij] of the
    global variable it accesses, together with an uninterpreted function
    symbol [f_ij] (implicit: the symbol is identified with the step id).
    Each step is the indivisible execution of
    [t_ij ← x_ij ; x_ij ← f_ij(t_i1, ..., t_ij)].

    Steps additionally carry an operation type {!Op.t}. The paper's
    model makes every step an atomic read-modify-write ([Op.Update],
    the default everywhere); [Op.Read] marks a step that only reads its
    variable and installs nothing, and the remaining operations declare
    blind or semantic updates whose commutativity {!Commute} exposes to
    the schedulers. Single-version rw machinery ([Conflict] on untyped
    syntax, the locking policies, SGT) conservatively treats every
    non-[Read] step as an update, which preserves all their guarantees;
    the multi-version engines ([Sched.Mvcc]/[Si]/[Ssi]), the semantic
    scheduler ([Sched.Semantic]) and the history recorder
    ([Analysis.History]) honour the distinction. *)

type t

val make : Names.var array array -> t
(** [make accesses] builds a syntax where [accesses.(i).(j)] is [x_ij],
    the variable accessed by step [j] of transaction [i]; every step is
    an [Op.Update]. Transactions may be empty. Raises [Invalid_argument]
    on an empty system. *)

val make_typed : (Op.t * Names.var) array array -> t
(** Like {!make} but with an explicit operation per step. *)

val of_lists : Names.var list list -> t

val of_lists_typed : (Op.t * Names.var) list list -> t

val format : t -> int array
(** The paper's format [(m_1, ..., m_n)]. *)

val n_transactions : t -> int

val n_steps : t -> int
(** Total number of steps [Σ m_i]. *)

val length : t -> int -> int
(** [length s i] is [m_i]. *)

val var : t -> Names.step_id -> Names.var
(** [var s id] is [x_ij] for step [id]. Raises [Invalid_argument] on an
    out-of-range id. *)

val kind : t -> Names.step_id -> Op.t
(** The step's operation; [Op.Update] for any syntax built by {!make}
    or {!of_lists}. Raises [Invalid_argument] on an out-of-range id. *)

val typed : t -> bool
(** Whether any step is not an [Op.Update] (i.e. the syntax leaves the
    paper's pure read-modify-write fragment). *)

val vars : t -> Names.var list
(** All distinct variable names, sorted. *)

val updates : t -> int -> Names.var list
(** [updates s i] is the sorted set of variables transaction [i]
    writes to (its write set — under pure RMW this equals its read
    set; [Op.Read] steps do not contribute). *)

val steps : t -> Names.step_id list
(** All steps, transaction by transaction. *)

val steps_on : t -> Names.var -> Names.step_id list
(** All steps accessing a given variable, in transaction order. *)

val transactions_on : t -> Names.var -> int list
(** Indices of transactions having at least one step on the variable. *)

val rename : (Names.var -> Names.var) -> t -> t
(** Apply a variable renaming (used for the §5.4 discussion of policies
    correct under arbitrary renamings). Operations are preserved. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Multi-line listing: one line per step, [Tij: x_ij] for updates and
    [Tij: k(x_ij)] with the {!Op.to_char} code otherwise. *)
