(** The typed operation a step performs on its variable.

    This is the {e single} step-kind type of the whole system: the
    syntax ({!Syntax.kind}), the read/write history model
    ({!Rw_model.action}), the interpreted machine ({!System.step_kind})
    and every scheduler draw their step classification from here.

    [Read] only observes the variable and installs nothing; [Update] is
    the paper's atomic read-modify-write [t ← x; x ← f(..., t)], whose
    result both depends on the value read and is observed by the client.
    [Write] installs a value that does not depend on the variable's
    current contents (a blind write). The {e semantic} operations model
    abstract-data-type updates whose read is unobservable — their entire
    effect is the state transformation:

    - [Incr] / [Decr]: [x ← x ± c] counter bumps;
    - [Enqueue]: insertion into an unordered collection (a bag — the
      insertion order is not observable, which is what lets two
      enqueues commute; a FIFO queue's enqueues would not);
    - [Max]: the monotone fold [x ← max x c].

    Which pairs commute is {!Commute}'s business; this module only names
    the operations and their observability classes. *)

type t = Read | Write | Update | Incr | Decr | Enqueue | Max

val all : t list
(** Every operation, fixed order — the domain of {!Commute}'s table. *)

val writes : t -> bool
(** Whether the step installs a new value into its variable — true for
    everything except [Read]. *)

val observes : t -> bool
(** Whether the step's read is visible (to the client, or to later
    steps of its own transaction): true for [Read] and [Update] only.
    Blind and semantic operations expose nothing — formally, later
    interpretations of the same transaction may not depend on their
    local. {!System.step_kind} demotes a would-be semantic step to
    [Update] when that discipline is violated. *)

val semantic : t -> bool
(** [Incr], [Decr], [Enqueue] or [Max]. *)

val to_char : t -> char
(** One-letter code, used by {!Analysis.Analyze.parse_syntax} specs:
    [r w u + - q m]. *)

val of_char : char -> t option

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
