open Core

type mode = Shared | Exclusive

let compatible held requested =
  match held, requested with
  | Shared, Shared -> true
  | Shared, Exclusive | Exclusive, Shared | Exclusive, Exclusive -> false

type step =
  | Acquire of Names.var * mode
  | Release of Names.var
  | Do of Rw_model.step

type program = step array

let var_of_action = Rw_model.var_of

let transform_with ~mode_for i actions =
  let actions = Array.of_list actions in
  let m = Array.length actions in
  if m = 0 then [||]
  else begin
    let first = Hashtbl.create 8 and last = Hashtbl.create 8 in
    let first_write = Hashtbl.create 8 in
    Array.iteri
      (fun j a ->
        let v = var_of_action a in
        if not (Hashtbl.mem first v) then Hashtbl.add first v j;
        Hashtbl.replace last v j;
        if Rw_model.is_write a && not (Hashtbl.mem first_write v) then
          Hashtbl.add first_write v j)
      actions;
    (* initial mode at first use, and the position of the upgrade to
       exclusive if a later write needs one *)
    let initial_mode v = mode_for ~first_use:(Hashtbl.find first v) v actions in
    let upgrade_at v =
      match Hashtbl.find_opt first_write v, initial_mode v with
      | Some jw, Shared when jw > Hashtbl.find first v -> Some jw
      | _ -> None
    in
    let acquire_positions =
      Hashtbl.fold
        (fun v j acc ->
          let acc = j :: acc in
          match upgrade_at v with Some jw -> jw :: acc | None -> acc)
        first []
    in
    let phase_shift = List.fold_left max 0 acquire_positions in
    let early_releases =
      Hashtbl.fold
        (fun v j acc -> if j < phase_shift then (j, v) :: acc else acc)
        last []
      |> List.sort (fun a b -> compare b a)
    in
    let steps = ref [] in
    let emit s = steps := s :: !steps in
    for j = 0 to m - 1 do
      let v = var_of_action actions.(j) in
      if Hashtbl.find first v = j then emit (Acquire (v, initial_mode v));
      if upgrade_at v = Some j then emit (Acquire (v, Exclusive));
      if j = phase_shift then
        List.iter (fun (_, w) -> emit (Release w)) early_releases;
      emit (Do { Rw_model.id = Names.step i j; action = actions.(j) });
      if j >= phase_shift then
        Hashtbl.iter (fun w j' -> if j' = j then emit (Release w)) last
    done;
    Array.of_list (List.rev !steps)
  end

let transform i actions =
  transform_with i actions ~mode_for:(fun ~first_use v actions ->
      let a = actions.(first_use) in
      if Rw_model.is_write a && String.equal a.Rw_model.var v then Exclusive
      else Shared)

let exclusive_only i actions =
  transform_with i actions ~mode_for:(fun ~first_use:_ _ _ -> Exclusive)

let programs per_tx = Array.of_list (List.mapi transform per_tx)

(* The lock table: variable -> holders with their mode. Upgrades succeed
   when the requester is the sole holder. *)
type table = (Names.var, (int * mode) list) Hashtbl.t

let grantable (tbl : table) i = function
  | Release _ | Do _ -> true
  | Acquire (v, want) ->
    let holders = try Hashtbl.find tbl v with Not_found -> [] in
    List.for_all
      (fun (j, held) -> j = i || compatible held want)
      holders

let apply (tbl : table) i = function
  | Do _ -> ()
  | Acquire (v, want) ->
    let holders = try Hashtbl.find tbl v with Not_found -> [] in
    Hashtbl.replace tbl v ((i, want) :: List.remove_assoc i holders)
  | Release v ->
    let holders = try Hashtbl.find tbl v with Not_found -> [] in
    (match List.remove_assoc i holders with
    | [] -> Hashtbl.remove tbl v
    | rest -> Hashtbl.replace tbl v rest)

let legal progs il =
  let n = Array.length progs in
  let progress = Array.make n 0 in
  let tbl : table = Hashtbl.create 16 in
  let ok = ref true in
  Array.iter
    (fun i ->
      if !ok then
        if i < 0 || i >= n || progress.(i) >= Array.length progs.(i) then
          ok := false
        else begin
          let s = progs.(i).(progress.(i)) in
          if grantable tbl i s then begin
            apply tbl i s;
            progress.(i) <- progress.(i) + 1
          end
          else ok := false
        end)
    il;
  !ok
  && Array.for_all2 (fun p prog -> p = Array.length prog) progress progs
  && Hashtbl.length tbl = 0

let project progs il =
  let n = Array.length progs in
  let progress = Array.make n 0 in
  let actions = ref [] in
  Array.iter
    (fun i ->
      (match progs.(i).(progress.(i)) with
      | Do s -> actions := s :: !actions
      | Acquire _ | Release _ -> ());
      progress.(i) <- progress.(i) + 1)
    il;
  Array.of_list (List.rev !actions)

let outputs progs =
  let fmt = Array.map Array.length progs in
  let seen = Hashtbl.create 64 in
  Combin.Interleave.fold fmt
    (fun acc il ->
      if legal progs il then begin
        let h = project progs il in
        if Hashtbl.mem seen h then acc
        else begin
          Hashtbl.add seen h ();
          h :: acc
        end
      end
      else acc)
    []
  |> List.rev

let passes progs (h : Rw_model.history) =
  let n = Array.length progs in
  let progress = Array.make n 0 in
  let tbl : table = Hashtbl.create 16 in
  let ok = ref true in
  let exec i s =
    if grantable tbl i s then begin
      apply tbl i s;
      progress.(i) <- progress.(i) + 1
    end
    else ok := false
  in
  let eager_releases i =
    let continue = ref true in
    while !ok && !continue do
      let p = progress.(i) in
      if p < Array.length progs.(i) then
        match progs.(i).(p) with
        | Release _ as s -> exec i s
        | Acquire _ | Do _ -> continue := false
      else continue := false
    done
  in
  Array.iter
    (fun (s : Rw_model.step) ->
      if !ok then begin
        let i = s.Rw_model.id.Names.tx in
        let continue = ref true in
        while !ok && !continue do
          let p = progress.(i) in
          if p >= Array.length progs.(i) then ok := false
          else begin
            let step = progs.(i).(p) in
            exec i step;
            match step with
            | Do s' ->
              if not (Names.equal_step s.Rw_model.id s'.Rw_model.id) then
                ok := false;
              continue := false
            | Acquire _ | Release _ -> ()
          end
        done;
        if !ok then eager_releases i
      end)
    h;
  !ok && Hashtbl.length tbl = 0

let is_two_phase prog =
  let released = ref false in
  Array.for_all
    (fun s ->
      match s with
      | Release _ ->
        released := true;
        true
      | Acquire _ -> not !released
      | Do _ -> true)
    prog

let pp_step ppf = function
  | Acquire (v, Shared) -> Format.fprintf ppf "lock-S %s" v
  | Acquire (v, Exclusive) -> Format.fprintf ppf "lock-X %s" v
  | Release v -> Format.fprintf ppf "unlock %s" v
  | Do s ->
    let letter =
      String.make 1
        (Char.uppercase_ascii (Op.to_char s.Rw_model.action.Rw_model.op))
    in
    Format.fprintf ppf "%s%d(%s)" letter
      (s.Rw_model.id.Names.tx + 1)
      (var_of_action s.Rw_model.action)

let pp_program ppf prog =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun k s ->
      if k > 0 then Format.fprintf ppf "@ ";
      pp_step ppf s)
    prog;
  Format.fprintf ppf "@]"
